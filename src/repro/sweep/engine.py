"""The sweep engine: fan independent points out, keep results in order.

:func:`run_sweep` takes an ordered list of specs (see
:mod:`repro.sweep.spec`) and returns ``(results, stats)`` where
``results[i]`` is always the result of ``specs[i]`` — the engine tags
every unit of work with its index, so the ordering is deterministic no
matter which worker finishes first.

Execution strategy:

* cached points are answered from the :class:`~repro.sweep.cache.ResultCache`
  first (never dispatched to a worker);
* with ``jobs <= 1`` (or at most one point left) the remaining points run
  in-process, exactly the pre-engine serial path — including live
  ``obs=`` capture per point;
* with ``jobs > 1`` the remaining points go to a ``multiprocessing``
  *spawn* pool (spawn, not fork: workers re-import ``repro`` cleanly, so
  the engine is safe under pytest, macOS, and Windows semantics alike).
  Results are cached in the parent as they arrive.

Observability: worker processes cannot share an
:class:`~repro.obs.ObsSession`, so when ``obs`` is given and some points
did not run in-process with it (parallel run, or cache hits), the engine
*re-runs the sweep-dominating point serially* with the session attached.
Every run is deterministic, so the recapture is bit-identical to the
worker's run — ``--trace-out``/``--report`` keep working at any job
count.  The session also receives the :class:`SweepStats` record, so
per-worker progress and cache hit/miss counts appear in reports.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["SweepStats", "run_sweep"]


@dataclass
class SweepStats:
    """Accounting for one sweep: cache behaviour, worker spread, wall time."""

    label: str = ""
    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    #: Host (not simulated) seconds for the whole sweep.
    wall_s: float = 0.0
    #: Points executed per worker, e.g. ``{"main": 3}`` or
    #: ``{"worker-1": 2, "worker-2": 4}``.
    per_worker: Dict[str, int] = field(default_factory=dict)
    cache_enabled: bool = False

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def summary_line(self) -> str:
        """One-line human summary, printed by the CLI after each sweep."""
        cache = (
            f"{self.cache_hits}/{self.total} cached"
            if self.cache_enabled
            else "cache off"
        )
        workers = len(self.per_worker) or 1
        return (
            f"sweep {self.label or '(unnamed)'}: {self.total} points, {cache}, "
            f"{self.executed} executed on {workers} worker(s) "
            f"[jobs={self.jobs}] in {self.wall_s:.2f}s"
        )

    def to_markdown(self) -> str:
        lines = [
            f"### sweep: {self.label or '(unnamed)'}",
            "",
            "| points | cache hits | executed | jobs | wall (s) |",
            "|---|---|---|---|---|",
            f"| {self.total} | "
            f"{self.cache_hits if self.cache_enabled else 'off'} "
            f"| {self.executed} | {self.jobs} | {self.wall_s:.2f} |",
        ]
        if self.per_worker:
            lines += ["", "| worker | points executed |", "|---|---|"]
            for name in sorted(self.per_worker):
                lines.append(f"| {name} | {self.per_worker[name]} |")
        return "\n".join(lines) + "\n"


def _worker_name() -> str:
    proc = multiprocessing.current_process()
    ident = getattr(proc, "_identity", None)
    if ident:
        return f"worker-{ident[0]}"
    return "main"


def _execute_indexed(item: Tuple[int, Any]) -> Tuple[int, Any, str]:
    """Pool target: run one spec, tag the result with its index."""
    index, spec = item
    return index, spec.run(), _worker_name()


def run_sweep(
    specs: Sequence[Any],
    *,
    jobs: int = 1,
    cache=None,
    obs=None,
    metrics=None,
    label: str = "",
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[List[Any], SweepStats]:
    """Run every spec; return results in spec order plus sweep accounting.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the completed results folded **in spec order** — never in completion
    order — so the merged registry is bit-identical at any ``jobs`` count
    (the per-worker merge is deterministic by construction).
    """
    t_start = time.perf_counter()
    stats = SweepStats(
        label=label,
        total=len(specs),
        jobs=max(1, jobs),
        cache_enabled=cache is not None,
    )
    results: List[Any] = [None] * len(specs)
    say = progress or (lambda _msg: None)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
            stats.cache_hits += 1
            say(f"[{label}] point {i + 1}/{len(specs)}: cache hit")
        else:
            pending.append(i)

    captured_live = set()  # indices that ran in-process with obs attached
    if stats.jobs <= 1 or len(pending) <= 1:
        for i in pending:
            results[i] = specs[i].run(obs=obs)
            if obs is not None:
                captured_live.add(i)
            if cache is not None:
                cache.put(specs[i], results[i])
            stats.executed += 1
            stats.per_worker["main"] = stats.per_worker.get("main", 0) + 1
            say(f"[{label}] point {i + 1}/{len(specs)}: executed (main)")
    else:
        ctx = multiprocessing.get_context("spawn")
        n_workers = min(stats.jobs, len(pending))
        with ctx.Pool(n_workers) as pool:
            work = [(i, specs[i]) for i in pending]
            for i, result, worker in pool.imap_unordered(
                _execute_indexed, work, chunksize=1
            ):
                results[i] = result
                if cache is not None:
                    cache.put(specs[i], result)
                stats.executed += 1
                stats.per_worker[worker] = stats.per_worker.get(worker, 0) + 1
                say(f"[{label}] point {i + 1}/{len(specs)}: executed ({worker})")

    # Recapture the dominating point for the ObsSession when it did not
    # run in-process: deterministic simulations make the serial re-run
    # bit-identical to whatever the worker (or a past cached run) saw.
    if obs is not None and results and all(r is not None for r in results):
        best = max(range(len(specs)), key=lambda i: specs[i].elapsed_of(results[i]))
        if best not in captured_live:
            specs[best].run(obs=obs)
            say(f"[{label}] recaptured point {best + 1} for observability")

    if metrics is not None and results and all(r is not None for r in results):
        metrics.record_sweep(label, results)

    stats.wall_s = time.perf_counter() - t_start
    if obs is not None:
        obs.record_sweep(stats)
    return results, stats
