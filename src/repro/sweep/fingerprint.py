"""Code fingerprint: one hash over every ``.py`` file of the package.

The result cache must never serve a point computed by *different code*:
a calibration-constant tweak in ``config.py`` or a method change in
``core/`` silently alters every simulated time.  Rather than tracking
which modules a point touches (fragile), the cache keys on a single
SHA-256 over the relative path and contents of every Python source file
under ``repro`` — any edit anywhere in the package invalidates the whole
cache.  That is deliberately coarse: recomputing a sweep is cheap next
to debugging a stale cached result.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["code_fingerprint"]

_cached: dict = {}


def code_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 hex digest over all ``*.py`` files under ``root``.

    ``root`` defaults to the installed ``repro`` package directory.  The
    walk is sorted, so the digest is independent of filesystem order;
    the digest covers relative paths as well as contents, so renames
    invalidate too.  Memoized per root for the life of the process.
    """
    if root is None:
        import repro

        root = str(Path(repro.__file__).resolve().parent)
    root = str(Path(root).resolve())
    hit = _cached.get(root)
    if hit is not None:
        return hit
    base = Path(root)
    h = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        h.update(str(path.relative_to(base)).encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    digest = h.hexdigest()
    _cached[root] = digest
    return digest
