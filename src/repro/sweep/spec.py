"""Picklable, canonically hashable descriptions of one sweep point.

A *spec* is everything needed to reproduce one independent simulation:
a pattern recipe (registry name + arguments, never a built ``Pattern``
object), the access method, the direction, and the frozen
:class:`~repro.config.ClusterConfig` — which carries the seed and the
fault plan, so both participate in the cache key for free.

Three spec flavours cover every sweep in the repository:

* :class:`PointSpec` — the common point-runner behind the figure
  drivers (``artificial``/``flashio``/``tiledvis`` and figure 18's
  native methods): dispatches to
  :func:`~repro.experiments.harness.des_point` or ``model_point``;
* :class:`MpiioSpec` — figure 18's MPI-IO strategies (independent and
  two-phase collective), which bypass the harness;
* :class:`ChaosSpec` — one ``pvfs-sim chaos`` scenario (baseline +
  faulty run pair), returning a :class:`~repro.experiments.chaos.ChaosRow`.

Every spec implements the same small protocol the engine and cache use:
``run(obs=None)``, ``cache_token()``, ``result_to_json()`` /
``result_from_json()``, and ``elapsed_of()``.

:func:`canonical` converts a spec (nested frozen dataclasses, tuples,
dicts, primitives) into a deterministic JSON-able structure; hashing its
``json.dumps(..., sort_keys=True)`` gives a stable content address.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..config import ClusterConfig
from ..errors import ConfigError

__all__ = ["PointSpec", "MpiioSpec", "ChaosSpec", "canonical"]


def canonical(obj: Any) -> Any:
    """Deterministic JSON-able form of ``obj`` (dataclasses keep their
    type name, so two configs with identical fields but different types
    never collide)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigError(f"cannot canonicalize {type(obj).__name__!r} for cache keying")


def _pattern_registry():
    from .. import patterns

    return {
        "one_dim_cyclic": patterns.one_dim_cyclic,
        "block_block": patterns.block_block,
        "flash_io": patterns.flash_io,
        "tiled_visualization": patterns.tiled_visualization,
        "uniform_fragments": patterns.uniform_fragments,
    }


@dataclass(frozen=True)
class PointSpec:
    """One harness point: pattern recipe + method + kind + config."""

    figure: str
    pattern: str  # key into the pattern registry
    pattern_args: Tuple  # positional recipe arguments (JSON-able)
    method: str
    kind: str  # "read" | "write"
    mode: str  # "des" | "model"
    cfg: ClusterConfig
    x: float = 0.0
    #: Override the result's series name (e.g. fig15's ``list-text``).
    series: Optional[str] = None
    #: Extra options: ``method_opts`` in DES mode, plan options in model
    #: mode (sorted key/value pairs so the spec stays frozen/hashable).
    opts: Tuple[Tuple[str, Any], ...] = ()
    measure_phases: bool = False
    repeats: int = 1

    def build_pattern(self):
        registry = _pattern_registry()
        try:
            factory = registry[self.pattern]
        except KeyError:
            raise ConfigError(f"unknown pattern recipe {self.pattern!r}") from None
        return factory(*self.pattern_args)

    def run(self, obs=None):
        from ..experiments.harness import des_point, model_point

        pattern = self.build_pattern()
        opts = dict(self.opts)
        if self.mode == "model":
            point = model_point(
                pattern,
                self.method,
                self.kind,
                self.cfg,
                figure=self.figure,
                x=self.x,
                **opts,
            )
        else:
            point = des_point(
                pattern,
                self.method,
                self.kind,
                self.cfg,
                figure=self.figure,
                x=self.x,
                method_opts=opts or None,
                measure_phases=self.measure_phases,
                repeats=self.repeats,
                obs=obs,
            )
        if self.series is not None:
            point.series = self.series
        return point

    def cache_token(self) -> Dict[str, Any]:
        return {"kind": "point", "spec": canonical(self)}

    @staticmethod
    def result_to_json(point) -> Dict[str, Any]:
        return dataclasses.asdict(point)

    @staticmethod
    def result_from_json(d: Dict[str, Any]):
        from ..experiments.harness import DataPoint

        return DataPoint(**d)

    @staticmethod
    def elapsed_of(point) -> float:
        return point.elapsed


@dataclass(frozen=True)
class MpiioSpec:
    """One figure-18 MPI-IO point (independent or two-phase collective)."""

    scale: Any  # experiments.presets.Scale (a frozen dataclass)
    n_ranks: int
    collective: bool
    cb_nodes: Optional[int] = None
    faults: Optional[Any] = None  # FaultConfig or None
    #: Collective buffer size in bytes (ROMIO's ``cb_buffer_size``);
    #: ``None`` = unbounded, i.e. one exchange round per collective.
    cb_buffer: Optional[int] = None

    def run(self, obs=None):
        from ..experiments.collective import _mpiio_point

        return _mpiio_point(
            self.scale,
            self.n_ranks,
            self.collective,
            cb_nodes=self.cb_nodes,
            obs=obs,
            faults=self.faults,
            cb_buffer=self.cb_buffer,
        )

    def cache_token(self) -> Dict[str, Any]:
        return {"kind": "mpiio", "spec": canonical(self)}

    result_to_json = staticmethod(PointSpec.result_to_json)
    result_from_json = staticmethod(PointSpec.result_from_json)
    elapsed_of = staticmethod(PointSpec.elapsed_of)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos scenario run (fault-free baseline + faulty replay)."""

    scenario: str
    benchmark: str
    scale: Any  # experiments.presets.Scale
    restart_after: float = 2.0
    #: Chain replication: copies per stripe and write-ack policy.  Spec
    #: fields, so both enter the cache key via :func:`canonical`.
    replicas: int = 1
    ack: str = "primary"

    def run(self, obs=None):
        from ..experiments.chaos import run_scenario

        return run_scenario(
            self.scenario,
            benchmark=self.benchmark,
            scale=self.scale,
            restart_after=self.restart_after,
            replicas=self.replicas,
            ack=self.ack,
        )

    def cache_token(self) -> Dict[str, Any]:
        return {"kind": "chaos", "spec": canonical(self)}

    @staticmethod
    def result_to_json(row) -> Dict[str, Any]:
        return dataclasses.asdict(row)

    @staticmethod
    def result_from_json(d: Dict[str, Any]):
        from ..experiments.chaos import ChaosRow

        d = dict(d)
        d["events"] = [(float(t), str(what)) for t, what in d.get("events", [])]
        return ChaosRow(**d)

    @staticmethod
    def elapsed_of(row) -> float:
        return row.faulty_s
