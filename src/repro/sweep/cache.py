"""Content-hashed on-disk result cache for sweep points.

Key
    SHA-256 over the canonical JSON of the spec (which embeds the full
    :class:`~repro.config.ClusterConfig` — seed, cost model, stripe
    parameters, *and* the fault plan/retry policy) plus the
    :func:`~repro.sweep.fingerprint.code_fingerprint` of the installed
    ``repro`` package.  Change any config field, any fault, or any line
    of source and the key changes; nothing needs manual invalidation.

Value
    The point's stats/metrics as JSON (``DataPoint`` or ``ChaosRow``
    fields).  Floats are serialized with ``repr`` shortest-roundtrip
    encoding, so a cache hit is *bit-identical* to the original run —
    the equality tests in ``tests/test_sweep_cache.py`` use ``==``, not
    ``approx``.

Entries are one file each under ``<dir>/<key[:2]>/<key>.json``, written
atomically (temp file + ``os.replace``) so concurrent sweeps sharing a
cache directory never observe torn entries.  Unreadable or corrupt
entries are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from .fingerprint import code_fingerprint

__all__ = ["ResultCache", "default_cache_dir"]

#: Bump when the entry layout changes; old entries become misses.
_FORMAT = 1


def default_cache_dir() -> str:
    """``$PVFS_SIM_CACHE`` if set, else ``$XDG_CACHE_HOME/pvfs-sim`` or
    ``~/.cache/pvfs-sim``."""
    env = os.environ.get("PVFS_SIM_CACHE")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return str(base / "pvfs-sim")


class ResultCache:
    """Content-addressed store mapping sweep specs to their results."""

    def __init__(self, root: str, fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        #: Injectable for tests; defaults to the live code fingerprint.
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, spec) -> str:
        payload = {
            "format": _FORMAT,
            "code": self.fingerprint,
            "token": spec.cache_token(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec) -> Optional[Any]:
        """The cached result for ``spec``, or ``None`` on a miss."""
        path = self._path(self.key(spec))
        try:
            with open(path) as fh:
                entry = json.load(fh)
            result = spec.result_from_json(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec, result) -> None:
        """Store ``result`` for ``spec`` (atomic; last writer wins)."""
        key = self.key(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": _FORMAT,
            "key": key,
            "code": self.fingerprint,
            "token": spec.cache_token(),
            "result": spec.result_to_json(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"<ResultCache {str(self.root)!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
