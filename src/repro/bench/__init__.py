"""Benchmark-regression harness: a deterministic performance trajectory.

The paper's contribution is comparative performance, so this package
gives the repository a machine-readable baseline to gate on:

* :mod:`repro.bench.suite` — the curated scenario suite (one per figure
  family plus kernel/network/storage microbenchmarks) and its runner;
* :mod:`repro.bench.schema` — schema-versioned ``BENCH_*.json`` results
  with bit-identical simulated metrics and median-of-N wall clocks;
* :mod:`repro.bench.compare` — per-metric tolerance policy (0% for
  simulated metrics, a configurable band for wall clock) and the
  regression table;
* :mod:`repro.bench.cli` — the ``pvfs-sim bench run|compare|list``
  subcommand CI gates on.

See ``docs/benchmarking.md`` for the file format and baseline-refresh
workflow.
"""

from .compare import CompareReport, CompareRow, compare_results
from .schema import (
    SCHEMA_VERSION,
    BenchResult,
    ScenarioResult,
    SimMetrics,
    WallMetrics,
    load,
    save,
)
from .suite import SUITE, Scenario, build_specs, run_suite, scenario_names

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "ScenarioResult",
    "SimMetrics",
    "WallMetrics",
    "load",
    "save",
    "Scenario",
    "SUITE",
    "build_specs",
    "run_suite",
    "scenario_names",
    "CompareReport",
    "CompareRow",
    "compare_results",
]
