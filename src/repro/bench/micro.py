"""Substrate microbenchmark specs: kernel, network, and storage.

Each spec exercises one simulator substrate in isolation — the
discrete-event kernel's scheduling loop, the Ethernet fabric's NIC
queueing, and the disk service-time model — and returns a regular
:class:`~repro.experiments.harness.DataPoint` so it flows through
:func:`repro.sweep.run_sweep` and the :class:`~repro.sweep.ResultCache`
exactly like a figure point.

The *simulated* outcome of every spec is a pure function of its frozen
parameters (no host randomness, no wall-clock reads), so the simulated
metrics are bit-identical across runs; the bench harness times ``run()``
with the host clock to get the wall-clock side.

``obs`` is accepted for protocol compatibility but ignored: these specs
build bare substrates, not a full :class:`~repro.pvfs.Cluster`, so there
is nothing for an :class:`~repro.obs.ObsSession` to attach monitors to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..config import CacheConfig, DiskConfig, NetworkConfig
from ..experiments.harness import DataPoint
from ..regions import RegionList
from ..simulate import Counters, Resource, Simulator
from ..sweep.spec import PointSpec, canonical

__all__ = ["KernelChurnSpec", "NetStreamSpec", "DiskRunsSpec"]


class _MicroSpec:
    """Shared sweep-spec protocol plumbing for the micro specs."""

    def cache_token(self) -> Dict[str, Any]:
        return {"kind": "bench-micro", "spec": canonical(self)}

    result_to_json = staticmethod(PointSpec.result_to_json)
    result_from_json = staticmethod(PointSpec.result_from_json)
    elapsed_of = staticmethod(PointSpec.elapsed_of)


@dataclass(frozen=True)
class KernelChurnSpec(_MicroSpec):
    """Event-kernel scheduling churn: ``n_procs`` processes contending for
    a small resource pool, each holding it ``events_per_proc`` times.

    Simulated elapsed measures the contention schedule; the host wall
    clock measures the kernel's step rate (the hot loop every DES run
    pays for)."""

    n_procs: int = 64
    events_per_proc: int = 200
    capacity: int = 2

    def run(self, obs=None) -> DataPoint:
        sim = Simulator()
        pool = Resource(sim, capacity=self.capacity, name="bench.pool")

        def job(sim, index):
            for step in range(self.events_per_proc):
                with pool.request() as req:
                    yield req
                    # Deterministic per-process hold times spread the
                    # event queue without any random source.
                    yield sim.timeout(1e-4 * ((index + step) % 7 + 1))

        for index in range(self.n_procs):
            sim.process(job(sim, index))
        sim.run()
        n_events = self.n_procs * self.events_per_proc
        return DataPoint(
            figure="micro",
            series="kernel-churn",
            x=float(n_events),
            elapsed=sim.now,
            mode="des",
            kind="sched",
            n_clients=self.n_procs,
            logical_requests=pool.total_requests,
            sim_events=sim.events_scheduled,
        )


@dataclass(frozen=True)
class NetStreamSpec(_MicroSpec):
    """Many-to-one Ethernet streaming: ``n_senders`` NICs each pushing
    ``messages`` payloads at one receiver (the fan-in that melts I/O
    servers under multiple I/O)."""

    n_senders: int = 8
    messages: int = 32
    payload: int = 65536

    def run(self, obs=None) -> DataPoint:
        from ..network.fabric import Network

        sim = Simulator()
        counters = Counters()
        net = Network(sim, NetworkConfig(), counters)
        sink = net.add_node("sink")
        sources = [net.add_node(f"src{i}") for i in range(self.n_senders)]

        def stream(src):
            for _ in range(self.messages):
                yield from net.transfer(src, sink, self.payload)

        for src in sources:
            sim.process(stream(src))
        sim.run()
        total = self.n_senders * self.messages * self.payload
        return DataPoint(
            figure="micro",
            series="net-stream",
            x=float(self.payload),
            elapsed=sim.now,
            mode="des",
            kind="write",
            n_clients=self.n_senders,
            logical_requests=self.n_senders * self.messages,
            moved_bytes=int(counters.get("net.payload_bytes", total)),
            useful_bytes=total,
            sim_events=sim.events_scheduled,
        )


@dataclass(frozen=True)
class DiskRunsSpec(_MicroSpec):
    """Disk service-time model: a strided write burst committed to media,
    then the same regions read back cold (every run pays positioning)."""

    n_runs: int = 256
    run_bytes: int = 16384
    stride: int = 65536

    def run(self, obs=None) -> DataPoint:
        from ..storage.disk import Disk

        regions = RegionList.strided(0, self.n_runs, self.run_bytes, self.stride)
        disk = Disk(DiskConfig(), CacheConfig())
        elapsed = disk.write_time("bench", regions)
        elapsed += disk.flush_time()
        disk.drop_cache()
        elapsed += disk.read_time("bench", regions)
        total = regions.total_bytes
        return DataPoint(
            figure="micro",
            series="disk-runs",
            x=float(self.n_runs),
            elapsed=elapsed,
            mode="des",
            kind="mixed",
            n_clients=1,
            logical_requests=2 * self.n_runs,
            moved_bytes=2 * total,
            useful_bytes=2 * total,
        )
