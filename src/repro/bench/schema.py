"""Schema-versioned benchmark result files (``BENCH_<timestamp>.json``).

One :class:`BenchResult` records one run of the curated suite
(:mod:`repro.bench.suite`): per scenario, the **simulated metrics**
(simulated seconds, bytes moved, request counts — bit-identical across
runs at the same seed) and the **wall-clock metrics** (median of N timed
repeats with spread).  The two kinds are gated differently by
:mod:`repro.bench.compare`: simulated metrics at zero tolerance, wall
clock within a configurable band.

The JSON layout is versioned by :data:`SCHEMA_VERSION`; :func:`load`
rejects files written by a different schema with
:class:`~repro.errors.SchemaMismatchError`, so a stale committed baseline
fails loudly instead of producing a nonsense diff.  Floats round-trip via
``repr`` shortest-roundtrip encoding (the ``json`` module default), so a
saved-and-reloaded result compares ``==`` to the in-memory original.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from ..errors import BenchError, SchemaMismatchError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SimMetrics",
    "WallMetrics",
    "ScenarioResult",
    "BenchResult",
    "load",
    "save",
]

#: Bump on any incompatible change to the JSON layout below.
#: Version 2 added ``events`` / ``sim_s`` / ``ssr`` to ``WallMetrics``;
#: version-1 files are still readable (the new fields default to zero).
SCHEMA_VERSION = 2

#: Versions :func:`load` accepts.  Older-but-supported files upgrade in
#: memory; anything else fails loudly with :class:`SchemaMismatchError`.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


@dataclass(frozen=True)
class SimMetrics:
    """Deterministic accounting summed over a scenario's sweep points.

    Every field is derived from simulated execution only, so two runs of
    the same code at the same seed agree bit for bit.
    """

    #: Sum of simulated elapsed seconds over the scenario's points.
    elapsed_s: float
    moved_bytes: int
    useful_bytes: int
    logical_requests: int
    server_messages: int
    #: Number of sweep points the scenario ran.
    n_points: int

    @classmethod
    def from_points(cls, points) -> "SimMetrics":
        """Aggregate a list of :class:`~repro.experiments.harness.DataPoint`."""
        return cls(
            elapsed_s=float(sum(p.elapsed for p in points)),
            moved_bytes=int(sum(p.moved_bytes for p in points)),
            useful_bytes=int(sum(p.useful_bytes for p in points)),
            logical_requests=int(sum(p.logical_requests for p in points)),
            server_messages=int(sum(p.server_messages for p in points)),
            n_points=len(points),
        )


@dataclass(frozen=True)
class WallMetrics:
    """Host-clock statistics over N timed repeats of one scenario.

    Besides the raw wall-clock spread, v2 records the scenario's kernel
    throughput: ``events`` (deterministic count of events the simulator
    scheduled), ``sim_s`` (simulated seconds covered — same value as the
    zero-tolerance ``sim.elapsed_s``), and the derived ``ssr`` headline
    (simulated seconds per wall second, ``sim_s / median_s``).  These
    live here, not in :class:`SimMetrics`, because ``ssr`` depends on the
    host clock and ``events`` is expected to drift under kernel rewrites
    — neither belongs behind the zero-tolerance gate.
    """

    median_s: float
    mean_s: float
    std_s: float
    min_s: float
    max_s: float
    repeats: int
    #: Events scheduled by the simulator(s) of one execution (v2).
    events: int = 0
    #: Simulated seconds covered by one execution (v2).
    sim_s: float = 0.0
    #: Simulated seconds per wall second, ``sim_s / median_s`` (v2).
    ssr: float = 0.0

    @classmethod
    def from_samples(
        cls, samples: List[float], *, events: int = 0, sim_s: float = 0.0
    ) -> "WallMetrics":
        if not samples:
            raise BenchError("wall metrics need at least one timed sample")
        ordered = sorted(samples)
        n = len(ordered)
        mid = n // 2
        median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
        mean = sum(ordered) / n
        var = sum((s - mean) ** 2 for s in ordered) / n
        return cls(
            median_s=median,
            mean_s=mean,
            std_s=var**0.5,
            min_s=ordered[0],
            max_s=ordered[-1],
            repeats=n,
            events=int(events),
            sim_s=float(sim_s),
            ssr=(float(sim_s) / median if median > 0 else 0.0),
        )


@dataclass(frozen=True)
class ScenarioResult:
    """One suite scenario's simulated + wall-clock outcome."""

    name: str
    family: str  # "artificial" | "flash" | "tiled" | "collective" | "micro"
    sim: SimMetrics
    wall: WallMetrics


def _wall_from_json(data: Dict[str, Any]) -> WallMetrics:
    """Backward-compatible :class:`WallMetrics` reader: version-1 files
    lack ``events`` / ``sim_s`` / ``ssr``, which default to zero."""
    return WallMetrics(
        median_s=data["median_s"],
        mean_s=data["mean_s"],
        std_s=data["std_s"],
        min_s=data["min_s"],
        max_s=data["max_s"],
        repeats=data["repeats"],
        events=int(data.get("events", 0)),
        sim_s=float(data.get("sim_s", 0.0)),
        ssr=float(data.get("ssr", 0.0)),
    )


@dataclass
class BenchResult:
    """One full suite run, as serialized to ``BENCH_<timestamp>.json``."""

    scale: str
    scenarios: List[ScenarioResult]
    schema_version: int = SCHEMA_VERSION
    #: ISO-8601 UTC creation stamp (provenance only; never compared).
    created: str = ""
    #: Host provenance (python/platform); never compared.
    host: Dict[str, str] = field(default_factory=dict)
    #: ``repro`` source fingerprint at run time (provenance only —
    #: a baseline is *expected* to come from older code).
    code_fingerprint: str = ""
    repeats: int = 1
    jobs: int = 1
    cache_enabled: bool = False

    def scenario(self, name: str) -> ScenarioResult:
        for sc in self.scenarios:
            if sc.name == name:
                return sc
        raise KeyError(name)

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "BenchResult":
        try:
            version = data["schema_version"]
        except (TypeError, KeyError):
            raise SchemaMismatchError("not a bench result file: missing schema_version") from None
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise SchemaMismatchError(
                f"bench schema version {version} not in supported "
                f"{SUPPORTED_SCHEMA_VERSIONS}; refresh the file with "
                "'pvfs-sim bench run'"
            )
        try:
            scenarios = [
                ScenarioResult(
                    name=sc["name"],
                    family=sc["family"],
                    sim=SimMetrics(**sc["sim"]),
                    wall=_wall_from_json(sc["wall"]),
                )
                for sc in data["scenarios"]
            ]
            return cls(
                scale=data["scale"],
                scenarios=scenarios,
                schema_version=SCHEMA_VERSION,
                created=data.get("created", ""),
                host=dict(data.get("host", {})),
                code_fingerprint=data.get("code_fingerprint", ""),
                repeats=int(data.get("repeats", 1)),
                jobs=int(data.get("jobs", 1)),
                cache_enabled=bool(data.get("cache_enabled", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchError(f"malformed bench result file: {exc}") from None


def save(result: BenchResult, path: str) -> None:
    """Write ``result`` as JSON (atomic: temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load(path: str) -> BenchResult:
    """Read a ``BENCH_*.json`` file, rejecting schema mismatches."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise BenchError(f"cannot read bench result {path!r}: {exc}") from None
    except ValueError as exc:
        raise BenchError(f"invalid JSON in bench result {path!r}: {exc}") from None
    return BenchResult.from_json(data)
