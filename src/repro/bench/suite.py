"""The curated benchmark suite and its runner.

One :class:`Scenario` per figure family of the paper's evaluation
(artificial 1-D cyclic and block-block, FLASH I/O, tiled visualization,
the two-phase collective extension) plus one microbenchmark per
simulator substrate (event kernel, Ethernet fabric, disk model).  Each
scenario builds a small, fixed list of sweep specs at the requested
scale and runs them through :func:`repro.sweep.run_sweep` — the same
engine, cache, and observability plumbing the figure drivers use.

:func:`run_suite` times ``repeats`` full executions of every scenario
(median-of-N wall clock), aggregates the simulated metrics from the
first repeat, and cross-checks that every later repeat reproduced them
bit for bit — a determinism violation raises
:class:`~repro.errors.BenchError` rather than silently recording an
unstable baseline.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..errors import BenchError
from ..experiments.presets import SCALES, Scale
from ..sweep import ChaosSpec, MpiioSpec, PointSpec, run_sweep
from .micro import DiskRunsSpec, KernelChurnSpec, NetStreamSpec
from .schema import BenchResult, ScenarioResult, SimMetrics, WallMetrics

__all__ = [
    "Scenario",
    "SUITE",
    "scenario_names",
    "build_specs",
    "run_suite",
    "profile_suite",
]


@dataclass(frozen=True)
class Scenario:
    """One named, deterministic member of the benchmark suite."""

    name: str
    family: str
    description: str
    build: Callable[[Scale], List]

    def specs(self, scale: Scale) -> List:
        return self.build(scale)


def _artificial_specs(
    figure: str, pattern: str, methods: Sequence[str], kind: str
) -> Callable[[Scale], List]:
    def build(scale: Scale) -> List:
        if pattern == "one_dim_cyclic":
            clients = min(scale.cyclic_clients)
        else:
            clients = min(scale.blockblock_clients)
        cfg = ClusterConfig.chiba_city(n_clients=clients)
        return [
            PointSpec(
                figure=figure,
                pattern=pattern,
                pattern_args=(scale.artificial_total, clients, accesses),
                method=method,
                kind=kind,
                mode="des",
                cfg=cfg,
                x=accesses,
            )
            for accesses in scale.accesses_sweep
            for method in methods
        ]

    return build


def _flash_specs(scale: Scale) -> List:
    clients = min(scale.flash_clients)
    cfg = ClusterConfig.chiba_city(n_clients=clients)
    return [
        PointSpec(
            figure="fig15",
            pattern="flash_io",
            pattern_args=(clients, scale.flash),
            method=method,
            kind="write",
            mode="des",
            cfg=cfg,
            x=clients,
        )
        for method in ("multiple", "list")
    ]


def _tiled_specs(scale: Scale) -> List:
    cfg = ClusterConfig.chiba_city(n_clients=scale.tiled.tiles_x * scale.tiled.tiles_y)
    return [
        PointSpec(
            figure="fig17",
            pattern="tiled_visualization",
            pattern_args=(scale.tiled,),
            method=method,
            kind="read",
            mode="des",
            cfg=cfg,
            x=float(cfg.n_clients),
        )
        for method in ("multiple", "datasieve", "list")
    ]


def _collective_specs(scale: Scale) -> List:
    ranks = min(scale.flash_clients)
    return [
        MpiioSpec(scale=scale, n_ranks=ranks, collective=collective)
        for collective in (False, True)
    ]


def _twophase_specs(
    figure: str, pattern: str, kind: str, cb_buffer: Optional[int] = None
) -> Callable[[Scale], List]:
    """List I/O vs the first-class two-phase method on one artificial
    pattern (the crossover the analytic model predicts)."""

    def build(scale: Scale) -> List:
        if pattern == "one_dim_cyclic":
            clients = min(scale.cyclic_clients)
        else:
            clients = min(scale.blockblock_clients)
        accesses = min(scale.accesses_sweep)
        cfg = ClusterConfig.chiba_city(n_clients=clients)
        specs: List = []
        for method in ("list", "twophase"):
            opts: Tuple = ()
            if method == "twophase" and cb_buffer is not None:
                opts = (("cb_buffer", cb_buffer),)
            specs.append(
                PointSpec(
                    figure=figure,
                    pattern=pattern,
                    pattern_args=(scale.artificial_total, clients, accesses),
                    method=method,
                    kind=kind,
                    mode="des",
                    cfg=cfg,
                    x=accesses,
                    opts=opts,
                )
            )
        return specs

    return build


SUITE: Tuple[Scenario, ...] = (
    Scenario(
        "fig09_cyclic_read",
        "artificial",
        "1-D cyclic reads: multiple vs data sieving vs list I/O",
        _artificial_specs("fig09", "one_dim_cyclic", ("multiple", "datasieve", "list"), "read"),
    ),
    Scenario(
        "fig10_cyclic_write",
        "artificial",
        "1-D cyclic writes: multiple vs list I/O",
        _artificial_specs("fig10", "one_dim_cyclic", ("multiple", "list"), "write"),
    ),
    Scenario(
        "fig11_blockblock_read",
        "artificial",
        "block-block reads: multiple vs data sieving vs list I/O",
        _artificial_specs("fig11", "block_block", ("multiple", "datasieve", "list"), "read"),
    ),
    Scenario(
        "fig12_blockblock_write",
        "artificial",
        "block-block writes: multiple vs list I/O",
        _artificial_specs("fig12", "block_block", ("multiple", "list"), "write"),
    ),
    Scenario(
        "fig15_flash_write",
        "flash",
        "FLASH checkpoint writes: multiple vs list I/O",
        _flash_specs,
    ),
    Scenario(
        "fig17_tiled_read",
        "tiled",
        "tiled visualization reads: multiple vs data sieving vs list I/O",
        _tiled_specs,
    ),
    Scenario(
        "fig18_collective_write",
        "collective",
        "MPI-IO FLASH writes: independent vs two-phase collective",
        _collective_specs,
    ),
    Scenario(
        "twophase_cyclic_write",
        "collective",
        "1-D cyclic writes: list I/O vs first-class two-phase collective "
        "(single exchange round)",
        _twophase_specs("figTP", "one_dim_cyclic", "write"),
    ),
    Scenario(
        "twophase_blockblock_read",
        "collective",
        "block-block reads: list I/O vs two-phase with a 64 KiB collective "
        "buffer (multi-round exchange)",
        _twophase_specs("figTP", "block_block", "read", cb_buffer=64 * 1024),
    ),
    Scenario(
        "chaos_failover_read",
        "robust",
        "replicated read-back (R=2): kill the primary mid-read, fail over "
        "to replicas with zero data errors",
        lambda scale: [
            ChaosSpec(
                scenario="failover-read",
                benchmark="artificial",
                scale=scale,
                restart_after=2.0,
                replicas=2,
                ack="primary",
            )
        ],
    ),
    Scenario(
        "micro_kernel_churn",
        "micro",
        "event-kernel scheduling churn through a contended resource",
        lambda scale: [KernelChurnSpec()],
    ),
    Scenario(
        "micro_net_stream",
        "micro",
        "many-to-one Ethernet streaming through the NIC model",
        lambda scale: [NetStreamSpec()],
    ),
    Scenario(
        "micro_disk_runs",
        "micro",
        "strided write burst + cold read-back through the disk model",
        lambda scale: [DiskRunsSpec()],
    ),
)

_BY_NAME: Dict[str, Scenario] = {sc.name: sc for sc in SUITE}


def scenario_names() -> List[str]:
    return [sc.name for sc in SUITE]


def build_specs(name: str, scale: Scale) -> List:
    """The sweep specs scenario ``name`` runs at ``scale``."""
    try:
        scenario = _BY_NAME[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise BenchError(f"unknown scenario {name!r} (suite: {known})") from None
    return scenario.specs(scale)


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def run_suite(
    scale: Scale,
    *,
    scenarios: Optional[Sequence[str]] = None,
    repeats: int = 3,
    jobs: int = 1,
    cache=None,
    metrics=None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchResult:
    """Run the suite; return a schema-versioned :class:`BenchResult`.

    Every scenario executes ``repeats`` times through
    :func:`~repro.sweep.run_sweep` and each full execution is timed with
    the host clock; the simulated metrics come from the first repeat and
    are verified bit-identical across all of them.  ``cache`` (a
    :class:`~repro.sweep.ResultCache`) is passed straight to the engine —
    with caching on, wall-clock numbers measure cache service, so the
    harness leaves it off unless explicitly requested.
    """
    if repeats < 1:
        raise BenchError("repeats must be >= 1")
    say = progress or (lambda _msg: None)
    if scenarios is None:
        selected = list(SUITE)
    else:
        selected = []
        for name in scenarios:
            if name not in _BY_NAME:
                known = ", ".join(scenario_names())
                raise BenchError(f"unknown scenario {name!r} (suite: {known})")
            selected.append(_BY_NAME[name])

    results: List[ScenarioResult] = []
    for scenario in selected:
        specs = scenario.specs(scale)
        walls: List[float] = []
        sim: Optional[SimMetrics] = None
        events = 0
        for repeat in range(repeats):
            t0 = time.perf_counter()
            points, _stats = run_sweep(
                specs,
                jobs=jobs,
                cache=cache,
                # Fold metrics from the first repeat only: later repeats
                # are bit-identical, and double-counting would make the
                # registry depend on ``repeats``.
                metrics=metrics if repeat == 0 else None,
                label=f"bench/{scenario.name}",
            )
            walls.append(time.perf_counter() - t0)
            agg = SimMetrics.from_points(points)
            if sim is None:
                sim = agg
                events = sum(getattr(p, "sim_events", 0) for p in points)
            elif agg != sim:
                raise BenchError(
                    f"scenario {scenario.name!r} is not deterministic: repeat "
                    f"{repeat + 1} produced {agg} after {sim}"
                )
            say(f"[bench] {scenario.name}: repeat {repeat + 1}/{repeats} in {walls[-1]:.2f}s")
        results.append(
            ScenarioResult(
                name=scenario.name,
                family=scenario.family,
                sim=sim,
                wall=WallMetrics.from_samples(walls, events=events, sim_s=sim.elapsed_s),
            )
        )

    from ..sweep.fingerprint import code_fingerprint

    return BenchResult(
        scale=scale.name,
        scenarios=results,
        created=_utc_stamp(),
        host={
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        code_fingerprint=code_fingerprint(),
        repeats=repeats,
        jobs=jobs,
        cache_enabled=cache is not None,
    )


def profile_suite(
    scale: Scale,
    *,
    scenarios: Optional[Sequence[str]] = None,
    expected: Optional[BenchResult] = None,
    metrics=None,
    obs=None,
    progress: Optional[Callable[[str], None]] = None,
):
    """Run the selected scenarios once, serially, under the kernel profiler.

    Returns ``(profile, per_scenario)``: the frozen
    :class:`~repro.obs.prof.KernelProfile` covering every simulator the
    run constructed, and a name → :class:`SimMetrics` map.  When
    ``expected`` (a timed :class:`BenchResult` from the same scale) is
    given, each scenario's simulated metrics are cross-checked against
    the recorded ones — the profiler is passive, so any divergence is a
    determinism bug and raises :class:`~repro.errors.BenchError`.
    ``metrics`` / ``obs`` ride along on the same single pass, so one
    profiled run can also yield the metrics JSONL and a trace.
    """
    from ..obs.prof import KernelProfiler, profiled

    say = progress or (lambda _msg: None)
    if scenarios is None:
        selected = list(SUITE)
    else:
        selected = []
        for name in scenarios:
            if name not in _BY_NAME:
                known = ", ".join(scenario_names())
                raise BenchError(f"unknown scenario {name!r} (suite: {known})")
            selected.append(_BY_NAME[name])

    profiler = KernelProfiler()
    per_scenario: Dict[str, SimMetrics] = {}
    with profiled(profiler):
        for scenario in selected:
            specs = scenario.specs(scale)
            points, _stats = run_sweep(
                specs,
                jobs=1,
                metrics=metrics,
                obs=obs if scenario.family != "micro" else None,
                label=f"profile/{scenario.name}",
            )
            per_scenario[scenario.name] = SimMetrics.from_points(points)
            say(f"[profile] {scenario.name}: {len(points)} point(s)")
    if expected is not None:
        for name, sim in per_scenario.items():
            try:
                recorded = expected.scenario(name).sim
            except KeyError:
                continue
            if sim != recorded:
                raise BenchError(
                    f"profiled run of {name!r} diverged from the timed run "
                    f"({sim} != {recorded}) — the profiler must stay passive"
                )
    return profiler.profile(), per_scenario


def capture_slowest(result: BenchResult, scale_name: str, obs) -> Optional[str]:
    """Re-run the slowest traceable scenario of ``result`` under ``obs``.

    Micro scenarios build bare substrates with nothing to attach monitors
    to, so the pick is the largest wall-clock median among the cluster
    scenarios.  Returns the scenario name, or ``None`` when the result
    holds only micro scenarios.  Deterministic simulation makes the
    recapture bit-identical to the timed runs.
    """
    traceable = [sc for sc in result.scenarios if sc.family != "micro"]
    if not traceable:
        return None
    slowest = max(traceable, key=lambda sc: sc.wall.median_s)
    specs = build_specs(slowest.name, SCALES[scale_name])
    run_sweep(specs, jobs=1, obs=obs, label=f"bench/{slowest.name}")
    return slowest.name
