"""``pvfs-sim bench`` — run, compare, and list the regression suite.

::

    pvfs-sim bench run --scale smoke --repeats 3 --out BENCH_ci.json
    pvfs-sim bench run --scale smoke --trace-out bench.trace.json
    pvfs-sim bench compare benchmarks/baseline_smoke.json BENCH_ci.json \
        --wall-tolerance none --table regressions.md
    pvfs-sim bench list

``run`` writes a schema-versioned ``BENCH_<timestamp>.json``; ``compare``
exits 0 when the candidate matches the baseline under the tolerance
policy (0% for simulated metrics, a configurable band for wall clock)
and 1 with a regression table otherwise, making it directly CI-gateable.
See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..errors import BenchError
from ..experiments.presets import SCALES
from . import compare as compare_mod
from . import schema, suite

__all__ = ["main"]


def _des_scales() -> List[str]:
    return sorted(name for name, s in SCALES.items() if s.des_friendly)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim bench",
        description="Deterministic benchmark-regression suite",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the suite and write a BENCH_*.json")
    run.add_argument(
        "--scale",
        choices=_des_scales(),
        default="smoke",
        help="parameter scale (default: smoke; the suite always uses the DES)",
    )
    run.add_argument(
        "--out",
        metavar="PATH",
        help="result file (default: BENCH_<UTC timestamp>.json)",
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed executions per scenario for the wall-clock median "
        "(default: 3; simulated metrics are identical across repeats)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per scenario sweep (default: 1 = serial)",
    )
    run.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable; default: whole suite)",
    )
    run.add_argument(
        "--trace-out",
        metavar="FILE.json",
        help="after timing, re-run the slowest cluster scenario and write "
        "its Perfetto trace (open at ui.perfetto.dev)",
    )
    run.add_argument(
        "--profile",
        metavar="PREFIX",
        help="after timing, re-run the suite once under the kernel profiler "
        "and cProfile; writes PREFIX.json (handler table + SSR), "
        "PREFIX.collapsed (flamegraph input), and PREFIX.pstats",
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE.jsonl",
        help="export the suite's time-series metrics registry as JSONL "
        "(summarize with 'pvfs-sim obs FILE.jsonl')",
    )
    run.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="serve sweep points from this result cache (off by default: "
        "cache hits would make the wall clock measure cache service)",
    )
    run.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the kernel/NIC fast paths (exact legacy event chains; "
        "simulated metrics are identical either way — this is the live "
        "oracle for the fast-path equivalence guarantee)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-repeat progress lines")

    cmp_ = sub.add_parser("compare", help="diff two result files; exit 1 on regression")
    cmp_.add_argument("baseline", help="baseline BENCH_*.json")
    cmp_.add_argument("candidate", help="candidate BENCH_*.json")
    cmp_.add_argument(
        "--wall-tolerance",
        default=None,
        metavar="PCT|none",
        help="allowed wall-clock slowdown in percent, or 'none' to report "
        "wall clock without gating (default: "
        f"{compare_mod.DEFAULT_WALL_TOLERANCE * 100:.0f})",
    )
    cmp_.add_argument(
        "--table",
        metavar="PATH",
        help="also write the regression table (markdown) to PATH",
    )

    sub.add_parser("list", help="list the suite's scenarios")
    return p


def _run(args) -> int:
    if args.no_fastpath:
        import os

        from ..simulate.fastpath import NO_FASTPATH_ENV

        # Env (not a parameter) so spawned sweep workers inherit it too.
        os.environ[NO_FASTPATH_ENV] = "1"
    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None
    if args.cache_dir:
        from ..sweep import ResultCache

        cache = ResultCache(args.cache_dir)
    out = args.out or time.strftime("BENCH_%Y%m%d_%H%M%SZ.json", time.gmtime())
    say = (lambda _msg: None) if args.quiet else print
    metrics = None
    if args.metrics_out:
        from ..obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        result = suite.run_suite(
            SCALES[args.scale],
            scenarios=args.scenario,
            repeats=args.repeats,
            jobs=args.jobs,
            cache=cache,
            metrics=metrics,
            progress=say,
        )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    schema.save(result, out)
    print(_summary_markdown(result))
    print(f"wrote {len(result.scenarios)} scenario(s) to {out}")
    if metrics is not None:
        metrics.write_jsonl(args.metrics_out)
        print(
            f"wrote metrics registry to {args.metrics_out} "
            f"(summarize with 'pvfs-sim obs {args.metrics_out}')"
        )
    if args.profile:
        try:
            _profile_after_run(args, result)
        except BenchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.trace_out:
        from ..obs import ObsSession

        obs = ObsSession()
        traced = suite.capture_slowest(result, args.scale, obs)
        if traced is None:
            print(
                "no traceable scenario in this run (micro scenarios have no "
                "cluster to monitor); skipping trace export",
                file=sys.stderr,
            )
        else:
            obs.export_trace(args.trace_out, obs.best_run())
            print(
                f"wrote Perfetto trace of slowest scenario {traced!r} to "
                f"{args.trace_out} (open at ui.perfetto.dev)"
            )
    return 0


def _profile_after_run(args, result: schema.BenchResult) -> None:
    """Serve ``bench run --profile PREFIX``: one serial profiled re-run.

    The re-run happens after (never during) the timed repeats, under both
    the kernel profiler and cProfile, and is cross-checked bit-identical
    against the timed result — see :func:`repro.bench.suite.profile_suite`.
    """
    from ..obs import prof

    prefix = args.profile
    (profile, _per_scenario), cprofile = prof.capture_cprofile(
        suite.profile_suite,
        SCALES[args.scale],
        scenarios=args.scenario,
        expected=result,
    )
    prof.save_profile_json(
        profile, prefix + ".json", scale=args.scale, scenarios=args.scenario or "all"
    )
    n_stacks = prof.write_collapsed(cprofile, prefix + ".collapsed")
    prof.write_pstats(cprofile, prefix + ".pstats")
    print(profile.headline())
    print()
    print(profile.to_markdown(top=10))
    print(
        f"wrote kernel profile to {prefix}.json, {n_stacks} collapsed "
        f"stacks to {prefix}.collapsed, raw pstats to {prefix}.pstats"
    )


def _summary_markdown(result: schema.BenchResult) -> str:
    lines = [
        f"## bench run: {result.scale} scale, {result.repeats} repeat(s), "
        f"jobs={result.jobs}",
        "",
        "| scenario | points | sim elapsed (s) | moved (MB) | requests "
        "| events | wall median (s) | wall spread (s) | SSR |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for sc in result.scenarios:
        lines.append(
            f"| {sc.name} | {sc.sim.n_points} | {sc.sim.elapsed_s:.6f} "
            f"| {sc.sim.moved_bytes / 1e6:.2f} | {sc.sim.logical_requests} "
            f"| {sc.wall.events} | {sc.wall.median_s:.3f} "
            f"| {sc.wall.min_s:.3f}..{sc.wall.max_s:.3f} "
            f"| {sc.wall.ssr:.3f} |"
        )
    return "\n".join(lines) + "\n"


def _parse_wall_tolerance(raw: Optional[str]) -> Optional[float]:
    if raw is None:
        return compare_mod.DEFAULT_WALL_TOLERANCE
    if raw.strip().lower() == "none":
        return None
    try:
        pct = float(raw)
    except ValueError:
        raise BenchError(f"--wall-tolerance must be a percentage or 'none', got {raw!r}") from None
    if pct < 0:
        raise BenchError("--wall-tolerance must be non-negative")
    return pct / 100.0


def _compare(args) -> int:
    try:
        tolerance = _parse_wall_tolerance(args.wall_tolerance)
        baseline = schema.load(args.baseline)
        candidate = schema.load(args.candidate)
        report = compare_mod.compare_results(
            baseline,
            candidate,
            wall_tolerance=tolerance,
            baseline_path=args.baseline,
            candidate_path=args.candidate,
        )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    table = report.to_markdown()
    print(table)
    if args.table:
        with open(args.table, "w") as fh:
            fh.write(table)
    return 0 if report.ok else 1


def _list() -> int:
    lines = [
        "| scenario | family | smoke points | description |",
        "|---|---|---|---|",
    ]
    smoke = SCALES["smoke"]
    for scenario in suite.SUITE:
        lines.append(
            f"| {scenario.name} | {scenario.family} "
            f"| {len(scenario.specs(smoke))} | {scenario.description} |"
        )
    print("\n".join(lines))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(sys.argv[1:] if argv is None else list(argv))
    if args.command == "run":
        return _run(args)
    if args.command == "compare":
        return _compare(args)
    return _list()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
