"""Regression detection between two benchmark result files.

Per-metric tolerance policy:

* **Simulated metrics** (``sim.*``) are compared at *zero* tolerance —
  they are bit-identical across runs at the same seed, so any drift in
  either direction means the change altered simulated behaviour and must
  be acknowledged by refreshing the baseline.
* **Wall-clock medians** regress only when the candidate is *slower*
  than the baseline by more than the configured fractional band
  (``wall_tolerance``); getting faster never fails.  Pass ``None`` to
  report wall clock informationally without gating (the right policy
  when baseline and candidate ran on different machines, e.g. a
  committed baseline checked on a CI runner).

A scenario present in the baseline but missing from the candidate is a
regression (coverage loss); a scenario new in the candidate is reported
but passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional

from ..errors import BenchError
from .schema import BenchResult, SimMetrics

__all__ = ["CompareRow", "CompareReport", "compare_results"]

#: Wall-clock band used when the caller does not choose one: the
#: candidate may be up to 50% slower before the gate trips.
DEFAULT_WALL_TOLERANCE = 0.5


@dataclass(frozen=True)
class CompareRow:
    """One metric of one scenario, baseline vs candidate."""

    scenario: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    #: "ok" | "regression" | "info"
    status: str
    note: str = ""

    @property
    def delta_pct(self) -> Optional[float]:
        if self.baseline in (None, 0) or self.candidate is None:
            return None
        return (self.candidate - self.baseline) / self.baseline * 100.0


@dataclass
class CompareReport:
    """Outcome of :func:`compare_results`."""

    baseline_path: str
    candidate_path: str
    wall_tolerance: Optional[float]
    rows: List[CompareRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[CompareRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_markdown(self) -> str:
        tol = (
            "informational"
            if self.wall_tolerance is None
            else f"+{self.wall_tolerance * 100:.0f}%"
        )
        lines = [
            "### bench compare",
            "",
            f"baseline `{self.baseline_path}` vs candidate "
            f"`{self.candidate_path}` — sim tolerance 0%, wall tolerance {tol}",
            "",
            "| scenario | metric | baseline | candidate | delta | status |",
            "|---|---|---|---|---|---|",
        ]
        for row in self.rows:

            def cell(value: Optional[float]) -> str:
                if value is None:
                    return "-"
                if float(value).is_integer() and not row.metric.endswith("_s"):
                    return f"{int(value)}"
                return f"{value:.6g}"

            delta = row.delta_pct
            delta_s = f"{delta:+.2f}%" if delta is not None else "-"
            status = row.status.upper() if row.status == "regression" else row.status
            note = f" ({row.note})" if row.note else ""
            lines.append(
                f"| {row.scenario} | {row.metric} | {cell(row.baseline)} "
                f"| {cell(row.candidate)} | {delta_s} | {status}{note} |"
            )
        lines.append("")
        if self.ok:
            lines.append("**verdict: PASS** — no regressions")
        else:
            lines.append(f"**verdict: FAIL** — {len(self.regressions)} regressing metric(s)")
        return "\n".join(lines) + "\n"


def compare_results(
    baseline: BenchResult,
    candidate: BenchResult,
    *,
    wall_tolerance: Optional[float] = DEFAULT_WALL_TOLERANCE,
    baseline_path: str = "baseline",
    candidate_path: str = "candidate",
) -> CompareReport:
    """Diff two results under the tolerance policy; never raises on
    regressions (inspect ``report.ok``), raises :class:`BenchError` when
    the files are not comparable (different scales)."""
    if baseline.scale != candidate.scale:
        raise BenchError(
            f"cannot compare across scales: baseline is {baseline.scale!r}, "
            f"candidate is {candidate.scale!r}"
        )
    if wall_tolerance is not None and wall_tolerance < 0:
        raise BenchError("wall_tolerance must be non-negative")
    report = CompareReport(
        baseline_path=baseline_path,
        candidate_path=candidate_path,
        wall_tolerance=wall_tolerance,
    )
    candidate_names = {sc.name for sc in candidate.scenarios}
    for base_sc in baseline.scenarios:
        if base_sc.name not in candidate_names:
            report.rows.append(
                CompareRow(
                    scenario=base_sc.name,
                    metric="(scenario)",
                    baseline=None,
                    candidate=None,
                    status="regression",
                    note="missing from candidate",
                )
            )
            continue
        cand_sc = candidate.scenario(base_sc.name)
        for f in fields(SimMetrics):
            base_v = getattr(base_sc.sim, f.name)
            cand_v = getattr(cand_sc.sim, f.name)
            drifted = base_v != cand_v
            report.rows.append(
                CompareRow(
                    scenario=base_sc.name,
                    metric=f"sim.{f.name}",
                    baseline=float(base_v),
                    candidate=float(cand_v),
                    status="regression" if drifted else "ok",
                    note="sim drift" if drifted else "",
                )
            )
        base_w = base_sc.wall.median_s
        cand_w = cand_sc.wall.median_s
        if wall_tolerance is None:
            status, note = "info", "not gated"
        elif cand_w > base_w * (1.0 + wall_tolerance):
            status, note = "regression", "slower than tolerance"
        else:
            status, note = "ok", ""
        report.rows.append(
            CompareRow(
                scenario=base_sc.name,
                metric="wall.median_s",
                baseline=base_w,
                candidate=cand_w,
                status=status,
                note=note,
            )
        )
    baseline_names = {sc.name for sc in baseline.scenarios}
    for cand_sc in candidate.scenarios:
        if cand_sc.name not in baseline_names:
            report.rows.append(
                CompareRow(
                    scenario=cand_sc.name,
                    metric="(scenario)",
                    baseline=None,
                    candidate=None,
                    status="info",
                    note="new in candidate",
                )
            )
    return report
