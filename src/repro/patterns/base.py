"""Access-pattern base types.

A :class:`Pattern` describes one benchmark workload: for every rank
(client) a pair of region lists — memory and file — whose flattened byte
streams correspond, exactly the paper's list-interface contract.  Pattern
generators are pure functions of their parameters: no simulation state, so
both the live simulator and the analytic model consume the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


from ..errors import PatternError
from ..regions import RegionList

__all__ = ["RankAccess", "Pattern"]


@dataclass(frozen=True)
class RankAccess:
    """One rank's transfer description."""

    rank: int
    mem_regions: RegionList
    file_regions: RegionList

    def __post_init__(self) -> None:
        if self.mem_regions.total_bytes != self.file_regions.total_bytes:
            raise PatternError(
                f"rank {self.rank}: memory volume {self.mem_regions.total_bytes} "
                f"!= file volume {self.file_regions.total_bytes}"
            )

    @property
    def nbytes(self) -> int:
        return self.file_regions.total_bytes

    @property
    def n_file_regions(self) -> int:
        return self.file_regions.count

    @property
    def buffer_bytes(self) -> int:
        """Client memory buffer size this access needs."""
        return self.mem_regions.extent[1]


@dataclass(frozen=True)
class Pattern:
    """A complete multi-rank workload pattern."""

    name: str
    accesses: Tuple[RankAccess, ...]
    file_size: int

    def __post_init__(self) -> None:
        if not self.accesses:
            raise PatternError("pattern needs at least one rank")
        ranks = [a.rank for a in self.accesses]
        if ranks != list(range(len(ranks))):
            raise PatternError("rank accesses must be dense and ordered from 0")

    @property
    def n_ranks(self) -> int:
        return len(self.accesses)

    @property
    def total_bytes(self) -> int:
        return sum(a.nbytes for a in self.accesses)

    @property
    def total_file_regions(self) -> int:
        return sum(a.n_file_regions for a in self.accesses)

    def rank(self, r: int) -> RankAccess:
        return self.accesses[r]

    def verify_disjoint_across_ranks(self) -> bool:
        """True when no two ranks' file regions overlap (required for a
        race-free parallel write)."""
        combined = RegionList.empty()
        for a in self.accesses:
            combined = combined.concat(a.file_regions)
        return combined.is_disjoint()

    def verify_covers_file(self) -> bool:
        """True when the ranks' regions exactly tile ``[0, file_size)``."""
        combined = RegionList.empty()
        for a in self.accesses:
            combined = combined.concat(a.file_regions)
        c = combined.coalesced()
        return c.count == 1 and c.offsets[0] == 0 and c.lengths[0] == self.file_size

    def __repr__(self) -> str:
        return (
            f"<Pattern {self.name} ranks={self.n_ranks} "
            f"bytes={self.total_bytes} regions={self.total_file_regions}>"
        )
