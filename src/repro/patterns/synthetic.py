"""Synthetic workload generator.

The paper's workload references ([1][4][7][10]) characterize scientific
I/O as many small requests with varying spatial density.  This module
generates parameterized patterns in that family, for sweeps the paper's
fixed benchmarks cannot express (the crossover explorer, fault-injection
tests, randomized correctness tests):

* :func:`uniform_fragments` — fixed-size fragments at a chosen packing
  density, interleaved or partitioned across clients;
* :func:`random_fragments` — log-uniform region sizes and gaps from a
  seeded RNG (deterministic per seed).
"""

from __future__ import annotations

import numpy as np

from ..errors import PatternError
from ..regions import RegionList
from .base import Pattern, RankAccess

__all__ = ["uniform_fragments", "random_fragments"]


def uniform_fragments(
    n_clients: int,
    fragments_per_client: int,
    fragment_size: int,
    density: float = 1.0,
    layout: str = "interleaved",
) -> Pattern:
    """Fixed-size fragments at packing density ``density``.

    ``layout="interleaved"`` cycles clients like the paper's 1-D cyclic
    pattern; ``"partitioned"`` gives each client its own contiguous zone
    (block-like).  ``density`` is fragment bytes over footprint bytes
    within one client's stream (1.0 = back-to-back).
    """
    if n_clients <= 0 or fragments_per_client <= 0 or fragment_size <= 0:
        raise PatternError("all counts must be positive")
    if not 0 < density <= 1:
        raise PatternError("density must be in (0, 1]")
    if layout not in ("interleaved", "partitioned"):
        raise PatternError(f"unknown layout {layout!r}")
    slot = max(round(fragment_size / density), fragment_size)
    accesses = []
    if layout == "interleaved":
        stride = slot * n_clients
        for c in range(n_clients):
            file_regions = RegionList.strided(
                start=c * slot, count=fragments_per_client,
                length=fragment_size, stride=stride,
            )
            accesses.append(
                RankAccess(
                    rank=c,
                    mem_regions=RegionList.single(0, file_regions.total_bytes),
                    file_regions=file_regions,
                )
            )
        file_size = stride * fragments_per_client
    else:
        zone = slot * fragments_per_client
        for c in range(n_clients):
            file_regions = RegionList.strided(
                start=c * zone, count=fragments_per_client,
                length=fragment_size, stride=slot,
            )
            accesses.append(
                RankAccess(
                    rank=c,
                    mem_regions=RegionList.single(0, file_regions.total_bytes),
                    file_regions=file_regions,
                )
            )
        file_size = zone * n_clients
    return Pattern(
        name=f"uniform[{layout}, {fragment_size}B @ {density:.0%}]",
        accesses=tuple(accesses),
        file_size=file_size,
    )


def random_fragments(
    n_clients: int,
    fragments_per_client: int,
    min_size: int = 8,
    max_size: int = 4096,
    min_gap: int = 0,
    max_gap: int = 8192,
    seed: int = 0,
) -> Pattern:
    """Log-uniform random fragment sizes and gaps; clients get disjoint
    interleaved slots so the pattern is always safely writable in
    parallel.  Deterministic for a given seed."""
    if n_clients <= 0 or fragments_per_client <= 0:
        raise PatternError("all counts must be positive")
    if not (0 < min_size <= max_size):
        raise PatternError("need 0 < min_size <= max_size")
    if not (0 <= min_gap <= max_gap):
        raise PatternError("need 0 <= min_gap <= max_gap")
    rng = np.random.default_rng(seed)

    def log_uniform(lo, hi, n):
        if lo == hi:
            return np.full(n, lo, dtype=np.int64)
        return np.exp(
            rng.uniform(np.log(lo), np.log(hi), n)
        ).astype(np.int64).clip(lo, hi)

    accesses = []
    cursor = 0
    # Build a global interleaved schedule: round-robin one fragment per
    # client per round, with random sizes/gaps.
    offs = [[] for _ in range(n_clients)]
    lens = [[] for _ in range(n_clients)]
    for _round in range(fragments_per_client):
        for c in range(n_clients):
            size = int(log_uniform(min_size, max_size, 1)[0])
            gap = int(rng.integers(min_gap, max_gap + 1))
            offs[c].append(cursor)
            lens[c].append(size)
            cursor += size + gap
    for c in range(n_clients):
        file_regions = RegionList(offs[c], lens[c])
        accesses.append(
            RankAccess(
                rank=c,
                mem_regions=RegionList.single(0, file_regions.total_bytes),
                file_regions=file_regions,
            )
        )
    return Pattern(
        name=f"random[seed={seed}]",
        accesses=tuple(accesses),
        file_size=cursor,
    )
