"""Two-dimensional block-block access (paper Figure 8, Section 4.2.1).

A square global 2-D byte array (side ``N``, row-major in one file) is
partitioned into a ``q x q`` grid of blocks, one per client (so the client
count must be a perfect square — the paper uses 4, 9, 16).  Client
``(i, j)`` owns rows ``i*N/q .. (i+1)*N/q`` restricted to columns
``j*N/q .. (j+1)*N/q``: per row one run of ``N/q`` bytes, ``N/q`` runs in
total, each separated by a full row stride.

The benchmark's "number of accesses" further subdivides each row run into
equal pieces (the same bytes, fragmented harder), matching how the paper
sweeps accesses at constant volume.  Note the key locality property the
paper calls out: a client's runs advance through the file in
``N``-byte strides, so with stripe size ≪ N each client keeps hitting the
*same few I/O servers* — the cause of the list I/O upturn in Figure 11.
"""

from __future__ import annotations

import math

from ..errors import PatternError
from ..regions import RegionList
from .base import Pattern, RankAccess

__all__ = ["block_block"]


def block_block(
    total_bytes: int,
    n_clients: int,
    accesses_per_client: int,
) -> Pattern:
    """Build the block-block pattern.

    ``n_clients`` must be a perfect square ``q**2`` (the paper uses 4, 9,
    16).  The array side rounds down to the nearest multiple of ``q`` and
    the access count to the nearest feasible fragmentation (at least one
    access per row run) — the paper's grids, e.g. 1 GiB over 9 clients,
    are not exactly realizable either.  The pattern's ``file_size`` and
    region counts report the actual geometry.
    """
    q = math.isqrt(n_clients)
    if q * q != n_clients:
        raise PatternError(f"n_clients={n_clients} is not a perfect square")
    if total_bytes <= 0 or accesses_per_client <= 0:
        raise PatternError("total_bytes and accesses_per_client must be positive")
    N = (math.isqrt(total_bytes) // q) * q
    if N < q:
        raise PatternError(
            f"total_bytes={total_bytes} too small for a {q}x{q} decomposition"
        )
    total_bytes = N * N
    side = N // q  # block side in bytes == rows per client == run length
    pieces_per_row = max(round(accesses_per_client / side), 1)
    piece = -(-side // pieces_per_row)  # ceil: last piece of a row is short
    accesses = []
    for rank in range(n_clients):
        i, j = divmod(rank, q)
        row0 = i * side
        col0 = j * side
        rows = RegionList.strided(
            start=row0 * N + col0, count=side, length=side, stride=N
        )
        file_regions = rows.subdivide(piece)
        mem_regions = RegionList.single(0, side * side)
        accesses.append(
            RankAccess(rank=rank, mem_regions=mem_regions, file_regions=file_regions)
        )
    return Pattern(
        name=f"block-block[{q}x{q}, {accesses_per_client} accesses]",
        accesses=tuple(accesses),
        file_size=total_bytes,
    )
