"""FLASH I/O checkpoint pattern (paper Figures 13/14, Section 4.3.1).

Memory (per processor): ``n_blocks`` FLASH blocks, each an
``nxb x nyb x nzb`` cube of elements surrounded by ``n_guard`` guard cells
on every side; every element holds ``n_vars`` double-precision variables
stored contiguously (variable index fastest).  The checkpoint writes the
*inner* elements of every block for every variable — so each contiguous
memory region is a single 8-byte double.

File: variable-major.  All of variable 0, then variable 1, ...; within a
variable, ``n_blocks`` block slots; within a block slot, one
``nxb*nyb*nzb*8``-byte chunk per processor:

    offset(v, b, p) = ((v * n_blocks + b) * n_procs + p) * chunk_bytes

With the paper's defaults this gives, per processor, 983,040 8-byte memory
regions (the multiple I/O request count), 1,920 file regions of 4,096 bytes
(-> 30 list I/O requests at the 64-region cap), and 7.5 MiB of data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PatternError
from ..regions import RegionList
from .base import Pattern, RankAccess

__all__ = ["FlashConfig", "flash_io"]

_DOUBLE = 8  # sizeof(double)


@dataclass(frozen=True)
class FlashConfig:
    """FLASH mesh parameters.  Defaults are the paper's (Section 4.3.1)."""

    n_blocks: int = 80
    nxb: int = 8
    nyb: int = 8
    nzb: int = 8
    n_vars: int = 24
    n_guard: int = 4

    def __post_init__(self) -> None:
        for f in ("n_blocks", "nxb", "nyb", "nzb", "n_vars"):
            if getattr(self, f) <= 0:
                raise PatternError(f"{f} must be positive")
        if self.n_guard < 0:
            raise PatternError("n_guard must be non-negative")

    @classmethod
    def scaled(cls, factor: int = 4) -> "FlashConfig":
        """A reduced mesh for fast simulation (same structure, fewer
        elements): factor 4 -> 20 blocks of 4^3 elements."""
        if factor < 1:
            raise PatternError("factor must be >= 1")
        return cls(
            n_blocks=max(cls.n_blocks // factor, 1),
            nxb=max(cls.nxb // 2, 1) if factor > 1 else cls.nxb,
            nyb=max(cls.nyb // 2, 1) if factor > 1 else cls.nyb,
            nzb=max(cls.nzb // 2, 1) if factor > 1 else cls.nzb,
            n_vars=cls.n_vars,
            n_guard=min(cls.n_guard, 2) if factor > 1 else cls.n_guard,
        )

    @property
    def inner_elements(self) -> int:
        return self.nxb * self.nyb * self.nzb

    @property
    def chunk_bytes(self) -> int:
        """One (variable, block, proc) file chunk."""
        return self.inner_elements * _DOUBLE

    @property
    def checkpoint_bytes_per_proc(self) -> int:
        return self.n_blocks * self.n_vars * self.chunk_bytes

    @property
    def mem_regions_per_proc(self) -> int:
        """The paper's multiple-I/O request count per processor."""
        return self.n_blocks * self.inner_elements * self.n_vars

    @property
    def file_regions_per_proc(self) -> int:
        return self.n_blocks * self.n_vars

    @property
    def padded_dims(self):
        g = self.n_guard
        return (self.nxb + 2 * g, self.nyb + 2 * g, self.nzb + 2 * g)

    @property
    def block_footprint_bytes(self) -> int:
        px, py, pz = self.padded_dims
        return px * py * pz * self.n_vars * _DOUBLE


def _rank_memory_regions(cfg: FlashConfig) -> RegionList:
    """Memory offsets of every checkpointed double, in file-stream order
    (variable-major, then block, then z, y, x element order)."""
    px, py, pz = cfg.padded_dims
    g = cfg.n_guard
    # offsets of inner elements within one padded block (element index)
    x = np.arange(cfg.nxb) + g
    y = np.arange(cfg.nyb) + g
    z = np.arange(cfg.nzb) + g
    # element linear index: x fastest (C row-major over (z, y, x))
    elem = (
        z[:, None, None] * (py * px) + y[None, :, None] * px + x[None, None, :]
    ).ravel()  # shape (inner_elements,), stream order z,y,x
    elem_byte = elem * (cfg.n_vars * _DOUBLE)
    block_base = np.arange(cfg.n_blocks, dtype=np.int64) * cfg.block_footprint_bytes
    var_byte = np.arange(cfg.n_vars, dtype=np.int64) * _DOUBLE
    # stream order: v-major, then block, then element
    offsets = (
        var_byte[:, None, None] + block_base[None, :, None] + elem_byte[None, None, :]
    ).ravel()
    lengths = np.full(offsets.size, _DOUBLE, dtype=np.int64)
    return RegionList(offsets, lengths)


def flash_io(
    n_procs: int,
    cfg: FlashConfig | None = None,
) -> Pattern:
    """Build the FLASH checkpoint-write pattern for ``n_procs`` clients."""
    if n_procs <= 0:
        raise PatternError("n_procs must be positive")
    cfg = cfg or FlashConfig()
    mem = _rank_memory_regions(cfg)  # identical layout on every proc
    chunk = cfg.chunk_bytes
    accesses = []
    vb = np.arange(cfg.n_vars * cfg.n_blocks, dtype=np.int64)  # v-major (v*B + b)
    for p in range(n_procs):
        file_off = (vb * n_procs + p) * chunk
        file_regions = RegionList(file_off, np.full(vb.size, chunk, dtype=np.int64))
        accesses.append(
            RankAccess(rank=p, mem_regions=mem, file_regions=file_regions)
        )
    return Pattern(
        name=f"flash-io[{n_procs} procs, {cfg.n_blocks} blocks]",
        accesses=tuple(accesses),
        file_size=n_procs * cfg.checkpoint_bytes_per_proc,
    )
