"""Tiled visualization read pattern (paper Figure 16, Section 4.4.1).

A large frame is stored row-major in one file; an array of displays shows
it, one compute node per display ("tile").  Neighbouring tiles overlap so
edges can be blended, which makes each tile's file view noncontiguous: one
run of ``tile_width * bytes_per_pixel`` per display row.

Paper parameters: 3x2 displays, each 1024x768 at 24-bit colour, 270-pixel
horizontal and 128-pixel vertical overlap -> a 2532x1408 frame of about
10.2 MB; each of the 6 clients reads 768 rows (768 file regions -> 12 list
I/O requests at the 64-region cap) into contiguous memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PatternError
from ..regions import RegionList
from .base import Pattern, RankAccess

__all__ = ["TiledConfig", "tiled_visualization"]


@dataclass(frozen=True)
class TiledConfig:
    """Display-wall geometry.  Defaults are the paper's (Section 4.4.1)."""

    tiles_x: int = 3
    tiles_y: int = 2
    tile_width: int = 1024  # pixels
    tile_height: int = 768  # pixels
    overlap_x: int = 270  # pixels
    overlap_y: int = 128  # pixels
    bytes_per_pixel: int = 3  # 24-bit colour

    def __post_init__(self) -> None:
        for f in ("tiles_x", "tiles_y", "tile_width", "tile_height", "bytes_per_pixel"):
            if getattr(self, f) <= 0:
                raise PatternError(f"{f} must be positive")
        if self.overlap_x < 0 or self.overlap_y < 0:
            raise PatternError("overlaps must be non-negative")
        if self.overlap_x >= self.tile_width or self.overlap_y >= self.tile_height:
            raise PatternError("overlap must be smaller than the tile")

    @property
    def frame_width(self) -> int:
        return self.tiles_x * self.tile_width - (self.tiles_x - 1) * self.overlap_x

    @property
    def frame_height(self) -> int:
        return self.tiles_y * self.tile_height - (self.tiles_y - 1) * self.overlap_y

    @property
    def file_size(self) -> int:
        return self.frame_width * self.frame_height * self.bytes_per_pixel

    @property
    def n_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def regions_per_tile(self) -> int:
        return self.tile_height

    @property
    def tile_bytes(self) -> int:
        return self.tile_width * self.tile_height * self.bytes_per_pixel


def tiled_visualization(cfg: TiledConfig | None = None) -> Pattern:
    """Build the tiled-visualization read pattern (one rank per tile,
    row-major tile order)."""
    cfg = cfg or TiledConfig()
    bpp = cfg.bytes_per_pixel
    row_bytes = cfg.frame_width * bpp
    run = cfg.tile_width * bpp
    accesses = []
    for rank in range(cfg.n_tiles):
        ty, tx = divmod(rank, cfg.tiles_x)
        x0 = tx * (cfg.tile_width - cfg.overlap_x)
        y0 = ty * (cfg.tile_height - cfg.overlap_y)
        file_regions = RegionList.strided(
            start=y0 * row_bytes + x0 * bpp,
            count=cfg.tile_height,
            length=run,
            stride=row_bytes,
        )
        mem_regions = RegionList.single(0, cfg.tile_bytes)
        accesses.append(
            RankAccess(rank=rank, mem_regions=mem_regions, file_regions=file_regions)
        )
    return Pattern(
        name=f"tiled-vis[{cfg.tiles_x}x{cfg.tiles_y}]",
        accesses=tuple(accesses),
        file_size=cfg.file_size,
    )
