"""One-dimensional cyclic access (paper Figure 7, Section 4.2.1).

A global 2-D array is stored row-major in one file and every processor
owns an equal share of columns: flattened to 1-D, rank ``c`` of ``P``
accesses blocks of ``b`` bytes at offsets ``c*b, (P+c)*b, (2P+c)*b, ...``.
The benchmark fixes the aggregate volume (1 GiB in the paper) and varies
the *number of accesses per client*; the block size is whatever keeps the
volume constant:

    b = total_bytes / (n_clients * accesses_per_client)

Each client's memory side is one contiguous buffer.
"""

from __future__ import annotations

from ..errors import PatternError
from ..regions import RegionList
from .base import Pattern, RankAccess

__all__ = ["one_dim_cyclic"]


def one_dim_cyclic(
    total_bytes: int,
    n_clients: int,
    accesses_per_client: int,
) -> Pattern:
    """Build the 1-D cyclic pattern.

    When ``total_bytes`` does not divide evenly (the paper's own grid —
    1 GiB over 9 clients x 800,000 accesses is about 149 bytes/access —
    cannot be exact either), the block size rounds down and the aggregate
    shrinks to ``block * n_clients * accesses_per_client`` bytes; the
    pattern's ``file_size`` reports the actual value.
    """
    if total_bytes <= 0:
        raise PatternError("total_bytes must be positive")
    if n_clients <= 0 or accesses_per_client <= 0:
        raise PatternError("n_clients and accesses_per_client must be positive")
    n_blocks = n_clients * accesses_per_client
    block = total_bytes // n_blocks
    if block < 1:
        raise PatternError(
            f"total_bytes={total_bytes} too small for {n_clients} clients x "
            f"{accesses_per_client} accesses (needs at least 1 byte each)"
        )
    total_bytes = block * n_blocks
    stride = n_clients * block
    accesses = []
    for c in range(n_clients):
        file_regions = RegionList.strided(
            start=c * block, count=accesses_per_client, length=block, stride=stride
        )
        mem_regions = RegionList.single(0, accesses_per_client * block)
        accesses.append(RankAccess(rank=c, mem_regions=mem_regions, file_regions=file_regions))
    return Pattern(
        name=f"1d-cyclic[{n_clients}x{accesses_per_client}]",
        accesses=tuple(accesses),
        file_size=total_bytes,
    )
