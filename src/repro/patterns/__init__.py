"""Benchmark access patterns: the paper's four workload families."""

from .base import Pattern, RankAccess
from .blockblock import block_block
from .cyclic import one_dim_cyclic
from .flash import FlashConfig, flash_io
from .synthetic import random_fragments, uniform_fragments
from .tiled import TiledConfig, tiled_visualization

__all__ = [
    "Pattern",
    "RankAccess",
    "one_dim_cyclic",
    "block_block",
    "FlashConfig",
    "flash_io",
    "TiledConfig",
    "tiled_visualization",
    "uniform_fragments",
    "random_fragments",
]
