"""A minimal simulated MPI communicator.

The paper's benchmarks use MPI only for coordination — most importantly
``MPI_Barrier()`` to serialize data-sieving writes, since PVFS has no file
locks (Section 4.3.1).  This module provides just enough of that substrate
on top of the simulation kernel: a communicator with barrier, broadcast,
and gather among the client processes of one workload.

Data movement through the communicator is control-plane-sized, so these
operations charge a latency term (a tree of small messages) but never move
bulk data through the NIC model.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from ..errors import ConfigError
from ..simulate import Barrier, Event, Simulator

__all__ = ["Communicator"]


class Communicator:
    """An MPI_COMM_WORLD over ``size`` simulated ranks.

    All methods are simulation events/processes: ``yield comm.barrier()``,
    ``value = yield from comm.bcast(rank, value, root=0)``.
    """

    def __init__(self, sim: Simulator, size: int, latency: float = 60e-6) -> None:
        if size < 1:
            raise ConfigError("communicator size must be >= 1")
        self.sim = sim
        self.size = size
        #: Per-hop small-message latency used for collective cost.
        self.latency = latency
        self._barrier = Barrier(sim, size)
        self._bcast_state: Dict[int, Event] = {}
        self._gather_state: Dict[int, dict] = {}
        self._gather_events: Dict[int, Event] = {}
        self._generation = 0

    def _collective_time(self) -> float:
        """Dissemination-tree time for one collective."""
        return self.latency * max(math.ceil(math.log2(max(self.size, 2))), 1)

    # ------------------------------------------------------------------
    def barrier(self) -> Event:
        """Event that fires when all ranks have arrived (use ``yield``)."""
        return self._barrier.wait()

    def barrier_sync(self, rank: int):
        """Process form: barrier plus the dissemination latency charge."""
        yield self.barrier()
        yield self.sim.timeout(self._collective_time())

    # ------------------------------------------------------------------
    def bcast(self, rank: int, value: Any = None, root: int = 0):
        """Broadcast ``value`` from ``root``; every rank gets it.

        Process form: ``got = yield from comm.bcast(rank, mine, root=0)``.
        """
        gen = self._generation_slot(rank)
        ev = self._bcast_state.setdefault(gen, Event(self.sim))
        if rank == root:
            ev.succeed(value)
        got = yield ev
        yield self.sim.timeout(self._collective_time())
        return got

    def gather(self, rank: int, value: Any, root: int = 0):
        """Gather each rank's value at ``root`` (others receive ``None``)."""
        gen = self._generation_slot(rank, kind="gather")
        state = self._gather_state.setdefault(gen, {})
        ev = self._gather_events.setdefault(gen, Event(self.sim))
        state[rank] = value
        if len(state) == self.size:
            ev.succeed(dict(state))
        got = yield ev
        yield self.sim.timeout(self._collective_time())
        if rank != root:
            return None
        return [got[r] for r in sorted(got)]

    # ------------------------------------------------------------------
    _slot_counters: Dict[str, Dict[int, int]]

    def _generation_slot(self, rank: int, kind: str = "bcast") -> int:
        """Match the k-th collective call of every rank to one generation.

        Ranks must invoke collectives in the same order (as MPI requires);
        each rank's k-th call of a given kind joins generation k.
        """
        if not hasattr(self, "_slot_counters"):
            self._slot_counters = {}
        per_kind = self._slot_counters.setdefault(kind, {})
        gen = per_kind.get(rank, 0)
        per_kind[rank] = gen + 1
        return gen

    def __repr__(self) -> str:
        return f"<Communicator size={self.size}>"
