"""Simulated MPI substrate (barrier / bcast / gather over the DES kernel)."""

from .comm import Communicator

__all__ = ["Communicator"]
