"""``obs`` subcommand: summarize a saved trace without the original run.

::

    pvfs-sim obs /tmp/trace.json            # human summary + verdict
    pvfs-sim obs /tmp/trace.json --json     # machine-readable report
    python -m repro.obs.cli /tmp/trace.json # same, standalone

Reads the trace-event JSON written by ``--trace-out`` (or any
:func:`repro.obs.perfetto.write_trace` output), recomputes per-category
and per-lane statistics from the events, and prints the embedded
bottleneck report.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Dict, List

__all__ = ["main", "summarize"]


def _load(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if "traceEvents" not in doc:
        raise ValueError(f"{path} is not a trace-event JSON (no traceEvents)")
    return doc


def summarize(doc: dict) -> str:
    """Human-readable summary of a loaded trace document."""
    events = doc["traceEvents"]
    other = doc.get("otherData", {})
    spans = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]
    # Lane naming from metadata events.
    proc_names: Dict[int, str] = {}
    thread_names: Dict[tuple, str] = {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name":
            proc_names[e["pid"]] = e["args"]["name"]
        elif e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    lines: List[str] = []
    label = other.get("label", "(unlabelled)")
    lines.append(f"# trace summary — {label}")
    lines.append("")
    window = other.get("window_s")
    if window is not None:
        lines.append(f"window: {window:.6f} simulated seconds")
    lines.append(
        f"events: {len(spans)} spans, {len(counters)} counter samples, "
        f"{len(proc_names)} processes"
    )
    dropped = other.get("dropped_spans") or {}
    if dropped:
        per = ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        lines.append(f"dropped spans at capacity: {per}")
    lines.append("")

    # Per-category table recomputed from the events themselves.
    by_cat: Dict[str, List[float]] = defaultdict(list)
    for e in spans:
        by_cat[e.get("cat", "?")].append(e.get("dur", 0.0))
    lines.append("| category | spans | total (ms) | mean (us) | max (us) |")
    lines.append("|---|---|---|---|---|")
    for cat in sorted(by_cat):
        durs = by_cat[cat]
        lines.append(
            f"| {cat} | {len(durs)} | {sum(durs) / 1e3:.3f} "
            f"| {sum(durs) / len(durs):.1f} | {max(durs):.1f} |"
        )
    lines.append("")

    # Per-lane busy time (sum of span durations on that pid/tid).
    busy: Dict[tuple, float] = defaultdict(float)
    for e in spans:
        busy[(e["pid"], e.get("tid", 0))] += e.get("dur", 0.0)
    ranked = sorted(busy.items(), key=lambda kv: kv[1], reverse=True)
    lines.append("| lane | busy (ms) |")
    lines.append("|---|---|")
    for (pid, tid), total in ranked[:10]:
        node = proc_names.get(pid, f"pid{pid}")
        lane = thread_names.get((pid, tid), f"tid{tid}")
        lines.append(f"| {node}/{lane} | {total / 1e3:.3f} |")
    lines.append("")

    report = other.get("bottleneck")
    if report:
        lines.append(f"**verdict: {report.get('verdict', '(none)')}**")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="pvfs-sim obs",
        description="Summarize a trace JSON captured with --trace-out",
    )
    parser.add_argument("trace", help="path to the trace-event JSON file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the embedded bottleneck report as JSON instead",
    )
    args = parser.parse_args(argv)
    try:
        doc = _load(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        report = doc.get("otherData", {}).get("bottleneck")
        if report is None:
            print("error: trace carries no embedded bottleneck report", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2))
    else:
        print(summarize(doc))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
