"""``obs`` subcommand: summarize saved observability artifacts.

::

    pvfs-sim obs /tmp/trace.json            # trace: summary + verdict
    pvfs-sim obs /tmp/trace.json --json     # machine-readable report
    pvfs-sim obs /tmp/metrics.jsonl         # metrics: hottest counters,
                                            # histogram quantiles, series
    pvfs-sim obs /tmp/metrics.jsonl --top 20
    python -m repro.obs.cli /tmp/trace.json # same, standalone

Handles both artifact formats without the original run: the trace-event
JSON written by ``--trace-out`` (per-category and per-lane statistics
recomputed from the events, plus the embedded bottleneck report) and the
metrics JSONL written by ``--metrics-out`` (top-N hottest counters,
histogram quantile table, time-series overview).  The format is
detected from the file's first line.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Dict, List

__all__ = ["main", "summarize", "summarize_metrics"]


def _is_metrics_file(path: str) -> bool:
    """True when the first line is a ``pvfs-sim-metrics`` JSONL header."""
    with open(path) as fh:
        first = fh.readline()
    try:
        header = json.loads(first)
    except ValueError:
        return False
    return isinstance(header, dict) and header.get("tool") == "pvfs-sim-metrics"


def _load(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if "traceEvents" not in doc:
        raise ValueError(f"{path} is not a trace-event JSON (no traceEvents)")
    return doc


def summarize(doc: dict) -> str:
    """Human-readable summary of a loaded trace document."""
    events = doc["traceEvents"]
    other = doc.get("otherData", {})
    spans = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]
    # Lane naming from metadata events.
    proc_names: Dict[int, str] = {}
    thread_names: Dict[tuple, str] = {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name":
            proc_names[e["pid"]] = e["args"]["name"]
        elif e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    lines: List[str] = []
    label = other.get("label", "(unlabelled)")
    lines.append(f"# trace summary — {label}")
    lines.append("")
    window = other.get("window_s")
    if window is not None:
        lines.append(f"window: {window:.6f} simulated seconds")
    lines.append(
        f"events: {len(spans)} spans, {len(counters)} counter samples, "
        f"{len(proc_names)} processes"
    )
    dropped = other.get("dropped_spans") or {}
    if dropped:
        per = ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        lines.append(f"dropped spans at capacity: {per}")
    lines.append("")

    # Per-category table recomputed from the events themselves.
    by_cat: Dict[str, List[float]] = defaultdict(list)
    for e in spans:
        by_cat[e.get("cat", "?")].append(e.get("dur", 0.0))
    lines.append("| category | spans | total (ms) | mean (us) | max (us) |")
    lines.append("|---|---|---|---|---|")
    for cat in sorted(by_cat):
        durs = by_cat[cat]
        lines.append(
            f"| {cat} | {len(durs)} | {sum(durs) / 1e3:.3f} "
            f"| {sum(durs) / len(durs):.1f} | {max(durs):.1f} |"
        )
    lines.append("")

    # Per-lane busy time (sum of span durations on that pid/tid).
    busy: Dict[tuple, float] = defaultdict(float)
    for e in spans:
        busy[(e["pid"], e.get("tid", 0))] += e.get("dur", 0.0)
    ranked = sorted(busy.items(), key=lambda kv: kv[1], reverse=True)
    lines.append("| lane | busy (ms) |")
    lines.append("|---|---|")
    for (pid, tid), total in ranked[:10]:
        node = proc_names.get(pid, f"pid{pid}")
        lane = thread_names.get((pid, tid), f"tid{tid}")
        lines.append(f"| {node}/{lane} | {total / 1e3:.3f} |")
    lines.append("")

    report = other.get("bottleneck")
    if report:
        lines.append(f"**verdict: {report.get('verdict', '(none)')}**")
        lines.append("")
    return "\n".join(lines)


def summarize_metrics(doc: dict, top: int = 10) -> str:
    """Human-readable summary of a loaded metrics JSONL document.

    ``doc`` is the structure :func:`repro.obs.metrics.load_jsonl`
    returns; ``top`` caps the hottest-counter and histogram tables.
    """
    header = doc.get("header", {})
    counters: Dict[str, float] = doc.get("counters", {})
    gauges: Dict[str, float] = doc.get("gauges", {})
    histograms: List[dict] = doc.get("histograms", [])
    series: List[dict] = doc.get("series", [])

    lines: List[str] = []
    label = header.get("label") or "(unlabelled)"
    lines.append(f"# metrics summary — {label}")
    lines.append("")
    lines.append(
        f"instruments: {len(counters)} counters, {len(gauges)} gauges, "
        f"{len(histograms)} histograms, {len(series)} series "
        f"(schema v{header.get('schema_version', '?')})"
    )
    lines.append("")

    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        lines.append(f"## hottest counters (top {len(ranked)} of {len(counters)})")
        lines.append("")
        lines.append("| counter | value |")
        lines.append("|---|---|")
        for name, value in ranked:
            lines.append(f"| {name} | {value:,.6g} |")
        lines.append("")

    if gauges:
        lines.append("| gauge | value |")
        lines.append("|---|---|")
        for name in sorted(gauges):
            lines.append(f"| {name} | {gauges[name]:,.6g} |")
        lines.append("")

    if histograms:
        ranked_h = sorted(histograms, key=lambda h: (-h.get("count", 0), h["name"]))[:top]
        lines.append(f"## histograms (top {len(ranked_h)} of {len(histograms)} by count)")
        lines.append("")
        lines.append("| histogram | n | mean | p50 | p90 | p99 | max |")
        lines.append("|---|---|---|---|---|---|---|")
        for h in ranked_h:
            count = h.get("count", 0)
            mean = h.get("sum", 0.0) / count if count else 0.0
            q = h.get("quantiles", {})
            lines.append(
                f"| {h['name']} | {count} | {mean:.6g} "
                f"| {q.get('p50', 0.0):.6g} | {q.get('p90', 0.0):.6g} "
                f"| {q.get('p99', 0.0):.6g} | {h.get('max', 0.0):.6g} |"
            )
        lines.append("")

    if series:
        lines.append("| series | unit | samples | last value |")
        lines.append("|---|---|---|---|")
        for s in sorted(series, key=lambda s: s["name"])[:top]:
            samples = s.get("samples", [])
            last = samples[-1][1] if samples else 0.0
            lines.append(
                f"| {s['name']} | {s.get('unit') or '-'} "
                f"| {len(samples)} | {last:.6g} |"
            )
        if len(series) > top:
            lines.append(f"| ... {len(series) - top} more series ... | | | |")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="pvfs-sim obs",
        description="Summarize a trace JSON (--trace-out) or metrics JSONL "
        "(--metrics-out) without the original run",
    )
    parser.add_argument("trace", help="path to the trace JSON or metrics JSONL file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="traces: print the embedded bottleneck report as JSON instead",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="metrics: rows per table (default: 10)",
    )
    args = parser.parse_args(argv)
    try:
        if _is_metrics_file(args.trace):
            from .metrics import load_jsonl

            print(summarize_metrics(load_jsonl(args.trace), top=max(1, args.top)))
            return 0
        doc = _load(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        report = doc.get("otherData", {}).get("bottleneck")
        if report is None:
            print("error: trace carries no embedded bottleneck report", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2))
    else:
        print(summarize(doc))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
