"""``repro.obs`` — the observability layer.

Turns the simulator's :class:`~repro.simulate.Tracer` spans and the
resource monitors into three user-facing artifacts:

* a **Perfetto trace** (:mod:`repro.obs.perfetto`) — open the JSON in
  ``ui.perfetto.dev`` to see every client request, daemon service span,
  disk access, wire transfer, and inbox backlog on a per-node timeline;
* **resource utilization** (:mod:`repro.obs.monitor`) — busy/idle
  intervals per NIC / disk / daemon / client, queryable over any window;
* a **bottleneck report** (:mod:`repro.obs.bottleneck`) — resources
  ranked by busy fraction and critical-path share, with a one-line
  verdict ("disk-bound", "nic-bound", ...).

Two further layers answer "where does the time go" continuously:

* a **metrics pipeline** (:mod:`repro.obs.metrics`) — counters, gauges,
  fixed-bucket histograms with quantiles, and epoch-sampled time series
  per NIC / disk / IOD / client / queue, exported as schema-versioned
  JSONL and Perfetto counter tracks;
* a **kernel profiler** (:mod:`repro.obs.prof`) — events dispatched and
  host wall time per handler kind, heap pressure, and the
  simulated-seconds-per-wall-second (SSR) headline, plus cProfile
  capture with collapsed-stack (flamegraph) export.

Entry point for traces is :class:`~repro.obs.session.ObsSession`; the
experiments CLI exposes it as ``--trace-out`` / ``--report``, the
``obs`` subcommand summarizes saved traces and metrics JSONL files, and
the ``profile`` subcommand (:mod:`repro.obs.profcli`) drives the
profiler.

Everything here is passive: attaching a session, a registry, or the
profiler never advances simulated time, so observed and unobserved runs
produce bit-identical results.
"""

from .bottleneck import BottleneckReport, QueueStat, ResourceStat, attribute
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    from_capture,
    load_jsonl,
)
from .monitor import ClusterMonitor, ResourceMonitor, merge_intervals
from .perfetto import TRACE_VERSION, build_trace, write_trace
from .prof import KernelProfile, KernelProfiler, capture_cprofile, profiled
from .session import ObsSession, RunCapture

__all__ = [
    "ObsSession",
    "RunCapture",
    "ClusterMonitor",
    "ResourceMonitor",
    "merge_intervals",
    "build_trace",
    "write_trace",
    "TRACE_VERSION",
    "attribute",
    "BottleneckReport",
    "ResourceStat",
    "QueueStat",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "from_capture",
    "load_jsonl",
    "METRICS_SCHEMA_VERSION",
    "KernelProfiler",
    "KernelProfile",
    "profiled",
    "capture_cprofile",
]
