"""``repro.obs`` — the observability layer.

Turns the simulator's :class:`~repro.simulate.Tracer` spans and the
resource monitors into three user-facing artifacts:

* a **Perfetto trace** (:mod:`repro.obs.perfetto`) — open the JSON in
  ``ui.perfetto.dev`` to see every client request, daemon service span,
  disk access, wire transfer, and inbox backlog on a per-node timeline;
* **resource utilization** (:mod:`repro.obs.monitor`) — busy/idle
  intervals per NIC / disk / daemon / client, queryable over any window;
* a **bottleneck report** (:mod:`repro.obs.bottleneck`) — resources
  ranked by busy fraction and critical-path share, with a one-line
  verdict ("disk-bound", "nic-bound", ...).

Entry point for both is :class:`~repro.obs.session.ObsSession`; the
experiments CLI exposes it as ``--trace-out`` / ``--report`` and the
``obs`` subcommand summarizes saved traces.

Everything here is passive: attaching a session never advances simulated
time, so traced and untraced runs produce bit-identical results.
"""

from .bottleneck import BottleneckReport, QueueStat, ResourceStat, attribute
from .monitor import ClusterMonitor, ResourceMonitor, merge_intervals
from .perfetto import TRACE_VERSION, build_trace, write_trace
from .session import ObsSession, RunCapture

__all__ = [
    "ObsSession",
    "RunCapture",
    "ClusterMonitor",
    "ResourceMonitor",
    "merge_intervals",
    "build_trace",
    "write_trace",
    "TRACE_VERSION",
    "attribute",
    "BottleneckReport",
    "ResourceStat",
    "QueueStat",
]
