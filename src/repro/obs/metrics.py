"""``repro.obs.metrics`` — a passive metrics registry with time series.

Three instrument kinds plus epoch-sampled series, all pure bookkeeping
(recording a metric never advances simulated time, so metered runs stay
bit-identical to unmetered ones):

* :class:`Counter` — monotonically accumulating totals (bytes moved,
  requests served, fault retries);
* :class:`Gauge` — last-write-wins level readings (peak queue depth);
* :class:`Histogram` — fixed-bucket distributions with interpolated
  quantiles (span durations, per-point elapsed times).  Fixed bucket
  boundaries make histograms mergeable bucket-by-bucket, which is what
  keeps the sweep-worker merge deterministic;
* :class:`Series` — ``(time, value)`` samples, one per epoch (NIC/disk
  utilization, inbox depth, bytes on the wire per epoch).

:class:`MetricsRegistry` owns the instruments and offers two builders:

* :meth:`MetricsRegistry.record_sweep` folds a sweep's point results (in
  spec order, so ``--jobs 1`` and ``--jobs 4`` merge identically) into
  counters and histograms;
* :func:`from_capture` derives per-resource epoch series and span
  histograms from an :class:`~repro.obs.session.RunCapture` — kernel,
  network, disk, IOD, client, and fault signals in one registry.

Export is schema-versioned JSONL (:data:`METRICS_SCHEMA_VERSION`, one
JSON object per line, header first) readable by :func:`load_jsonl` and
summarized by ``pvfs-sim obs FILE.jsonl``; :func:`perfetto_counter_events`
renders every series as Perfetto counter tracks.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "from_capture",
    "load_jsonl",
    "perfetto_counter_events",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]

#: Bump on any incompatible change to the JSONL layout.
METRICS_SCHEMA_VERSION = 1

#: 1-2-5 ladder from 100 ns to 1000 s — covers every span duration the
#: simulator produces, from single-frame NIC occupancy to whole runs.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-7, 3) for m in (1.0, 2.0, 5.0)
)

#: Powers of four from 1 B to 1 GiB for byte-sized distributions.
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = tuple(float(4**k) for k in range(16))


class Counter:
    """A monotonically accumulating total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A last-write-wins level reading."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        # Gauges merge as max: the peak reading survives a worker merge.
        self.set_max(other.value)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``bounds`` are ascending bucket *upper* bounds; an implicit overflow
    bucket catches everything above the last bound.  Because the bounds
    are fixed at construction, two histograms with the same bounds merge
    by elementwise bucket addition — no resampling, no order dependence.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket(value)] += 1

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = max(self.bounds[i - 1] if i > 0 else 0.0, self.min)
                # Clamp to the observed range: a sparse bucket's upper
                # bound can sit far above the largest value it holds.
                hi = min(self.bounds[i], self.max) if i < len(self.bounds) else self.max
                lo, hi = min(lo, hi), max(lo, hi)
                frac = (target - cumulative) / n
                return lo + frac * (hi - lo)
            cumulative += n
        return self.max  # pragma: no cover - defensive

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ConfigError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "quantiles": {
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99),
            },
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class Series:
    """Epoch-sampled ``(time, value)`` pairs for one signal."""

    __slots__ = ("name", "unit", "samples")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, value))

    def merge(self, other: "Series") -> None:
        self.samples = sorted(self.samples + other.samples)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "series",
            "name": self.name,
            "unit": self.unit,
            "samples": [[t, v] for t, v in self.samples],
        }

    def __repr__(self) -> str:
        return f"<Series {self.name} samples={len(self.samples)}>"


class MetricsRegistry:
    """Named instruments plus the sweep/capture builders.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and addressed by dotted name.  :meth:`merge` folds another registry in
    — counters add, gauges take the max, histograms add bucketwise, series
    interleave by time — and :meth:`snapshot` renders a canonical, sorted,
    JSON-able structure two deterministic runs compare ``==`` on.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def series(self, name: str, unit: str = "") -> Series:
        if name not in self._series:
            self._series[name] = Series(name, unit)
        return self._series[name]

    @property
    def counters(self) -> List[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    @property
    def gauges(self) -> List[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    @property
    def histograms(self) -> List[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    @property
    def all_series(self) -> List[Series]:
        return [self._series[k] for k in sorted(self._series)]

    def top_counters(self, n: int = 10) -> List[Counter]:
        """The ``n`` hottest counters, largest value first (name-stable)."""
        ranked = sorted(self._counters.values(), key=lambda c: (-c.value, c.name))
        return ranked[:n]

    # -- builders --------------------------------------------------------
    def record_sweep(self, label: str, results: Iterable[Any]) -> None:
        """Fold one sweep's point results into counters + histograms.

        ``results`` must be in *spec order* (the engine guarantees it), so
        the fold is independent of which worker computed which point —
        the ``--jobs 1`` and ``--jobs 4`` merges are bit-identical.
        """
        scope = f"sweep.{label or '(unnamed)'}"
        elapsed_h = self.histogram("point.elapsed_s", DEFAULT_TIME_BUCKETS)
        moved_h = self.histogram("point.moved_bytes", DEFAULT_BYTE_BUCKETS)
        for result in results:
            elapsed = float(
                getattr(result, "elapsed", 0.0) or getattr(result, "faulty_s", 0.0)
            )
            moved = float(getattr(result, "moved_bytes", 0))
            self.counter(f"{scope}.points").inc()
            self.counter(f"{scope}.sim_s").inc(elapsed)
            self.counter(f"{scope}.moved_bytes").inc(moved)
            self.counter(f"{scope}.useful_bytes").inc(
                float(getattr(result, "useful_bytes", 0))
            )
            self.counter(f"{scope}.logical_requests").inc(
                float(getattr(result, "logical_requests", 0))
            )
            self.counter(f"{scope}.server_messages").inc(
                float(getattr(result, "server_messages", 0))
            )
            self.counter(f"{scope}.events").inc(
                float(getattr(result, "sim_events", 0))
            )
            retries = getattr(result, "retries", None)
            if retries:
                self.counter(f"{scope}.fault_retries").inc(float(retries))
            failovers = getattr(result, "failovers", None)
            if failovers:
                self.counter(f"{scope}.failovers").inc(float(failovers))
            exhausted = getattr(result, "retries_exhausted", None)
            if exhausted:
                self.counter(f"{scope}.retries_exhausted").inc(float(exhausted))
            elapsed_h.observe(elapsed)
            moved_h.observe(moved)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (commutative per instrument)."""
        for c in other._counters.values():
            self.counter(c.name).merge(c)
        for g in other._gauges.values():
            self.gauge(g.name).merge(g)
        for h in other._histograms.values():
            self.histogram(h.name, h.bounds).merge(h)
        for s in other._series.values():
            self.series(s.name, s.unit).merge(s)
        return self

    # -- output ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Canonical, sorted, JSON-able view (deterministic ``==``)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {c.name: c.value for c in self.counters},
            "gauges": {g.name: g.value for g in self.gauges},
            "histograms": [h.to_json() for h in self.histograms],
            "series": [s.to_json() for s in self.all_series],
        }

    def to_jsonl(self) -> str:
        """Schema-versioned JSONL: header line, then one object per metric."""
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "tool": "pvfs-sim-metrics",
                    "schema_version": METRICS_SCHEMA_VERSION,
                    "label": self.label,
                },
                sort_keys=True,
            )
        ]
        for c in self.counters:
            lines.append(json.dumps(c.to_json(), sort_keys=True))
        for g in self.gauges:
            lines.append(json.dumps(g.to_json(), sort_keys=True))
        for h in self.histograms:
            lines.append(json.dumps(h.to_json(), sort_keys=True))
        for s in self.all_series:
            lines.append(json.dumps(s.to_json(), sort_keys=True))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)} "
            f"series={len(self._series)}>"
        )


def load_jsonl(path: str) -> Dict[str, Any]:
    """Read a metrics JSONL file back into plain dicts.

    Returns ``{"header": ..., "counters": {...}, "gauges": {...},
    "histograms": [...], "series": [...]}``.  Raises :class:`ValueError`
    on a missing/foreign header or an unsupported schema version.
    """
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty — not a metrics JSONL file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("tool") != "pvfs-sim-metrics":
        raise ValueError(f"{path} is not a pvfs-sim metrics JSONL file")
    version = header.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"metrics schema version {version} != supported {METRICS_SCHEMA_VERSION}"
        )
    out: Dict[str, Any] = {
        "header": header,
        "counters": {},
        "gauges": {},
        "histograms": [],
        "series": [],
    }
    for line in lines[1:]:
        obj = json.loads(line)
        kind = obj.get("kind")
        if kind == "counter":
            out["counters"][obj["name"]] = obj["value"]
        elif kind == "gauge":
            out["gauges"][obj["name"]] = obj["value"]
        elif kind == "histogram":
            out["histograms"].append(obj)
        elif kind == "series":
            out["series"].append(obj)
    return out


# ---------------------------------------------------------------------------
# RunCapture -> registry: epoch series and span histograms per layer.
# ---------------------------------------------------------------------------

#: Span categories whose counts are fault/survival signals.
_FAULT_CATEGORIES = (
    "fault.crash",
    "fault.disk_stall",
    "fault.link_down",
    "fault.packet_loss",
    "fault.fence",
    "fault.resync",
    "client.timeout",
    "client.retry_backoff",
    "client.failover",
    "net.link_stall",
)

#: Epochs per capture window when the caller does not pick a width.
_DEFAULT_EPOCHS = 50


def _epoch_edges(t0: float, t1: float, epoch_s: Optional[float]) -> List[float]:
    if t1 <= t0:
        return [t0, t0]
    width = epoch_s if epoch_s and epoch_s > 0 else (t1 - t0) / _DEFAULT_EPOCHS
    edges = [t0]
    while edges[-1] < t1:
        edges.append(min(edges[-1] + width, t1))
    return edges


def _aggregate_counter_key(key: str) -> Optional[str]:
    """Collapse a per-node simulation counter key to a fleet aggregate.

    ``client.3.logical_requests`` -> ``sim.client.logical_requests``,
    ``iod.0.write_bytes`` -> ``sim.iod.write_bytes``,
    ``manager.op.lookup`` -> ``sim.manager.ops``,
    ``net.payload_bytes`` -> ``sim.net.payload_bytes``,
    ``faults.crashes`` -> ``sim.faults.crashes``.
    """
    parts = key.split(".")
    if parts[0] in ("client", "iod") and len(parts) >= 3 and parts[1].isdigit():
        return f"sim.{parts[0]}." + ".".join(parts[2:])
    if parts[0] == "manager":
        return "sim.manager.ops"
    if parts[0] in ("net", "faults"):
        return f"sim.{key}"
    return None


def from_capture(
    capture,
    *,
    epoch_s: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Derive a metrics registry from one captured run.

    Produces, per layer:

    * **network / disk / IOD / client** — a ``util.<resource>`` series
      (busy fraction per epoch) from every busy/idle monitor, plus total
      ``busy_s.<resource>`` counters;
    * **queues** — ``queue.<inbox>`` mean-depth series and a peak gauge;
    * **wire and platters** — ``net.bytes_per_epoch`` / ``disk.bytes_per_epoch``
      series from the span metadata;
    * **spans** — a duration histogram per category
      (``span.<category>.s``) with interpolated quantiles;
    * **faults** — ``faults.<category>`` retry/crash counters;
    * **simulation totals** — ``sim.*`` aggregates of the cluster's
      counters (bytes on the wire, logical requests, manager ops).
    """
    reg = registry if registry is not None else MetricsRegistry(label=capture.label)
    t0, t1 = capture.t0, capture.t1
    edges = _epoch_edges(t0, t1, epoch_s)

    for name in sorted(capture.monitors):
        mon = capture.monitors[name]
        if mon.kind == "queue":
            depth = reg.series(f"queue.{name}", unit="requests")
            for lo, hi in zip(edges, edges[1:]):
                depth.record(hi, mon.queue_mean(lo, hi))
            reg.gauge(f"queue.{name}.peak").set_max(mon.queue_depth.max_value())
            continue
        util = reg.series(f"util.{name}", unit="fraction")
        for lo, hi in zip(edges, edges[1:]):
            util.record(hi, mon.utilization(lo, hi))
        reg.counter(f"busy_s.{name}").inc(mon.busy_within(t0, t1))

    net_bytes = reg.series("net.bytes_per_epoch", unit="bytes")
    disk_bytes = reg.series("disk.bytes_per_epoch", unit="bytes")
    net_acc = [0.0] * max(len(edges) - 1, 1)
    disk_acc = [0.0] * max(len(edges) - 1, 1)

    def epoch_index(t: float) -> int:
        for i, hi in enumerate(edges[1:]):
            if t <= hi:
                return i
        return len(net_acc) - 1

    for span in capture.spans:
        reg.histogram(f"span.{span.category}.s", DEFAULT_TIME_BUCKETS).observe(
            span.duration
        )
        meta = dict(span.meta)
        if span.category == "net.xfer":
            net_acc[epoch_index(span.end)] += float(meta.get("payload_bytes", 0))
        elif span.category == "disk.busy":
            disk_acc[epoch_index(span.end)] += float(meta.get("nbytes", 0))
    for i, hi in enumerate(edges[1:]):
        net_bytes.record(hi, net_acc[i])
        disk_bytes.record(hi, disk_acc[i])

    for category, stats in sorted(capture.summary.items()):
        if category in _FAULT_CATEGORIES:
            reg.counter(f"faults.{category}").inc(stats.get("count", 0.0))

    for key, value in sorted(getattr(capture, "counters", {}).items()):
        agg = _aggregate_counter_key(key)
        if agg is not None:
            reg.counter(agg).inc(float(value))
    return reg


def perfetto_counter_events(
    registry: MetricsRegistry, pid: int
) -> List[Dict[str, Any]]:
    """Render every series as Perfetto counter events (``ph: "C"``) on
    process ``pid`` — one counter track per series, microsecond stamps."""
    events: List[Dict[str, Any]] = []
    for series in registry.all_series:
        for t, value in series.samples:
            events.append(
                {
                    "name": series.name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": pid,
                    "args": {series.unit or "value": value},
                }
            )
    return events
