"""``pvfs-sim profile`` — explain where every wall-second goes.

::

    pvfs-sim profile --scenario micro_kernel_churn
    pvfs-sim profile --scale smoke --out prof --top 20
    pvfs-sim profile --scenario fig09_cyclic_read \
        --metrics-out metrics.jsonl --trace-out trace.json
    pvfs-sim profile --list

Runs the selected benchmark-suite scenarios (default: the whole suite)
once, serially, under the kernel profiler (:mod:`repro.obs.prof`) and —
unless ``--no-cprofile`` — under :mod:`cProfile`.  Prints the SSR
headline (simulated seconds per wall second) and the per-handler
wall-time table, and writes:

* ``<out>.json`` — the kernel profile (handler table, heap stats, SSR);
* ``<out>.collapsed`` — collapsed stacks for ``flamegraph.pl`` /
  speedscope (skipped under ``--no-cprofile``);
* ``<out>.pstats`` — the raw :mod:`pstats` dump (same condition).

``--metrics-out`` folds the run's sweep results into a metrics registry
and exports it as JSONL; ``--trace-out`` attaches an
:class:`~repro.obs.ObsSession` to the same pass (jobs=1, so captures are
live) and writes the dominating run's Perfetto trace with the registry's
counter tracks embedded.  All of it is passive: the profiled run's
simulated metrics are bit-identical to an unprofiled run's.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import BenchError
from ..experiments.presets import SCALES

__all__ = ["main"]


def _des_scales() -> List[str]:
    return sorted(name for name, s in SCALES.items() if s.des_friendly)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim profile",
        description="Kernel + host profiling over the benchmark suite",
    )
    p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="profile only this suite scenario (repeatable; default: all)",
    )
    p.add_argument(
        "--scale",
        choices=_des_scales(),
        default="smoke",
        help="parameter scale (default: smoke)",
    )
    p.add_argument(
        "--out",
        default="profile",
        metavar="PREFIX",
        help="output prefix for .json/.collapsed/.pstats (default: profile)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="handler-table rows to print (default: 15)",
    )
    p.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip the cProfile pass (no .collapsed/.pstats; less host "
        "overhead, kernel accounting only)",
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE.jsonl",
        help="also export the run's metrics registry as JSONL",
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE.json",
        help="also write the dominating run's Perfetto trace (with metrics "
        "counter tracks when --metrics-out is given)",
    )
    p.add_argument(
        "--no-fastpath",
        action="store_true",
        help="profile with the kernel/NIC fast paths disabled (the legacy "
        "event chains) — pairs with a default run for before/after "
        "flamegraphs of the same workload",
    )
    p.add_argument("--list", action="store_true", help="list profilable scenarios and exit")
    return p


def _list_scenarios() -> int:
    from ..bench.suite import SUITE

    lines = ["| scenario | family | description |", "|---|---|---|"]
    for scenario in SUITE:
        lines.append(f"| {scenario.name} | {scenario.family} | {scenario.description} |")
    print("\n".join(lines))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _list_scenarios()
    if args.top < 1:
        print("error: --top must be >= 1", file=sys.stderr)
        return 2
    if args.no_fastpath:
        import os

        from ..simulate.fastpath import NO_FASTPATH_ENV

        os.environ[NO_FASTPATH_ENV] = "1"

    from ..bench.suite import profile_suite
    from . import prof

    metrics = None
    if args.metrics_out:
        from .metrics import MetricsRegistry

        metrics = MetricsRegistry()
    obs = None
    if args.trace_out:
        from .session import ObsSession

        obs = ObsSession()

    scale = SCALES[args.scale]
    try:
        if args.no_cprofile:
            profile, per_scenario = profile_suite(
                scale, scenarios=args.scenario, metrics=metrics, obs=obs, progress=print
            )
            cprofile = None
        else:
            (profile, per_scenario), cprofile = prof.capture_cprofile(
                profile_suite,
                scale,
                scenarios=args.scenario,
                metrics=metrics,
                obs=obs,
                progress=print,
            )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print()
    print(profile.headline())
    print()
    print(profile.to_markdown(top=args.top))

    prof.save_profile_json(
        profile,
        args.out + ".json",
        scale=args.scale,
        scenarios=args.scenario or "all",
    )
    written = [args.out + ".json"]
    if cprofile is not None:
        print("## hottest host functions (cProfile)")
        print()
        print(prof.top_functions_markdown(cprofile, n=args.top))
        n_stacks = prof.write_collapsed(cprofile, args.out + ".collapsed")
        prof.write_pstats(cprofile, args.out + ".pstats")
        written += [
            f"{args.out}.collapsed ({n_stacks} stacks)",
            args.out + ".pstats",
        ]
    if metrics is not None and obs is not None and obs.runs:
        # Fold the dominating captured run's epoch series (utilization,
        # queue depths, bytes per epoch) into the sweep-level registry.
        from .metrics import from_capture

        from_capture(obs.best_run(), registry=metrics)
    if metrics is not None:
        metrics.write_jsonl(args.metrics_out)
        written.append(args.metrics_out)
    if obs is not None:
        if obs.runs:
            obs.export_trace(args.trace_out, obs.best_run(), metrics=metrics)
            written.append(args.trace_out)
        else:
            print(
                "no traceable scenario selected (micro scenarios have no "
                "cluster to monitor); skipping trace export",
                file=sys.stderr,
            )
    print(f"wrote {', '.join(written)}")
    print(f"scenarios profiled: {', '.join(sorted(per_scenario))}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
