"""``repro.obs.prof`` — kernel event-loop accounting and host profiling.

Answers "where does every wall-second go?" for the discrete-event
simulator:

* :class:`KernelProfiler` hooks the kernel's dispatch loop (see
  ``Simulator.profiler`` in :mod:`repro.simulate.kernel`) and accounts
  every event it pops: events dispatched, host wall time per handler
  kind, event-heap growth, and simulated seconds covered — yielding the
  **SSR** headline (simulated seconds per wall second) on the frozen
  :class:`KernelProfile`;
* :func:`capture_cprofile` wraps a callable in :mod:`cProfile`, and
  :func:`collapsed_stacks` / :func:`write_collapsed` render the result
  as collapsed caller;callee stacks — the input format of
  ``flamegraph.pl`` and speedscope;
* :func:`profiled` is the context manager that arms the profiler for
  every :class:`~repro.simulate.Simulator` constructed inside it.

Everything is strictly passive: the profiler only *reads* the kernel
(host clocks never feed back into simulated time), so a profiled run is
bit-identical to an unprofiled one — the same guarantee tracing made in
PR 1, asserted by ``tests/test_obs_prof.py``.
"""

from __future__ import annotations

import json
import re
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "KernelProfiler",
    "KernelProfile",
    "profiled",
    "event_kind",
    "capture_cprofile",
    "collapsed_stacks",
    "write_collapsed",
    "write_pstats",
    "top_functions_markdown",
    "save_profile_json",
]

_DIGITS = re.compile(r"\d+")


def event_kind(event) -> str:
    """Grouping key for one dispatched event.

    Processes group by their (digit-normalized) name — every
    ``workload.client<i>`` lands in one ``process:workload.client*``
    row — and bare events group by class (``timeout``, ``event``,
    ``request``, ``allof``, ...).
    """
    name = getattr(event, "name", None)
    if name is not None and hasattr(event, "_gen"):
        return "process:" + _DIGITS.sub("*", name)
    return type(event).__name__.lower()


@dataclass(frozen=True)
class KernelProfile:
    """Frozen result of one profiling window."""

    #: Events dispatched (heap pops) across every simulator in the window.
    events: int
    #: Simulated seconds covered (summed over simulators).
    sim_s: float
    #: Host wall seconds of the whole window (not just handler time).
    wall_s: float
    #: ``(kind, count, handler wall seconds)``, hottest first.
    handlers: Tuple[Tuple[str, int, float], ...]
    #: Event-heap pressure: *live* pushes (events the dispatcher actually
    #: ran — lazily-cancelled entries are excluded, keeping
    #: ``heap_pushes == events`` for a drained heap) and the high-water
    #: mark (which still counts cancelled entries: they occupy heap slots
    #: until popped).
    heap_pushes: int
    heap_max: int
    #: Entries pushed then lazily cancelled (skipped on pop, never run).
    heap_cancelled: int
    #: Simulators constructed during the window.
    simulators: int

    @property
    def ssr(self) -> float:
        """Simulated seconds per wall second — the headline metric."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def handler_wall_s(self) -> float:
        """Wall seconds inside handlers (the rest is setup/teardown)."""
        return sum(w for _, _, w in self.handlers)

    def headline(self) -> str:
        return (
            f"SSR {self.ssr:.3f} simulated s / wall s "
            f"({self.sim_s:.6f} sim s over {self.wall_s:.3f} wall s; "
            f"{self.events} events, {self.events_per_s:,.0f} events/s, "
            f"{self.simulators} simulator(s))"
        )

    def to_markdown(self, top: Optional[int] = None) -> str:
        rows = self.handlers if top is None else self.handlers[:top]
        lines = [
            "| handler | events | wall (ms) | wall share | us/event |",
            "|---|---|---|---|---|",
        ]
        total = self.handler_wall_s or 1.0
        for kind, count, wall in rows:
            per_event = wall / count * 1e6 if count else 0.0
            lines.append(
                f"| {kind} | {count} | {wall * 1e3:.3f} "
                f"| {wall / total:.1%} | {per_event:.2f} |"
            )
        lines.append(
            f"\nheap: {self.heap_pushes} live pushes "
            f"(+{self.heap_cancelled} cancelled), high-water mark "
            f"{self.heap_max}; handlers account for "
            f"{self.handler_wall_s:.3f} of {self.wall_s:.3f} wall s"
        )
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "sim_s": self.sim_s,
            "wall_s": self.wall_s,
            "ssr": self.ssr,
            "events_per_s": self.events_per_s,
            "handlers": [
                {"kind": kind, "count": count, "wall_s": wall}
                for kind, count, wall in self.handlers
            ],
            "heap_pushes": self.heap_pushes,
            "heap_max": self.heap_max,
            "heap_cancelled": self.heap_cancelled,
            "simulators": self.simulators,
        }


class KernelProfiler:
    """Accumulates kernel dispatch accounting across simulators.

    Attach via :func:`profiled` (arms every simulator built in scope) or
    by assigning ``sim.profiler`` directly.  The kernel calls three
    hooks — :meth:`on_sim`, :meth:`on_push`, :meth:`on_event` — all of
    which only read the simulator.
    """

    def __init__(self) -> None:
        self._count: Dict[str, int] = {}
        self._wall: Dict[str, float] = {}
        self._sim_end: Dict[int, float] = {}
        self._sims = 0
        self.heap_pushes = 0
        self.heap_max = 0
        self.heap_cancelled = 0
        self._wall0: Optional[float] = None
        self._wall_total = 0.0

    # -- window ----------------------------------------------------------
    def start(self) -> None:
        self._wall0 = perf_counter()

    def stop(self) -> None:
        if self._wall0 is not None:
            self._wall_total += perf_counter() - self._wall0
            self._wall0 = None

    # -- kernel hooks ------------------------------------------------------
    def on_sim(self, sim) -> None:
        self._sims += 1
        sim._prof_key = self._sims

    def on_push(self, sim, heap_len: int) -> None:
        self.heap_pushes += 1
        if heap_len > self.heap_max:
            self.heap_max = heap_len

    def on_cancel(self, sim) -> None:
        """A pushed entry was lazily cancelled — move it out of the live
        push lane so ``heap_pushes`` keeps matching dispatched events."""
        self.heap_pushes -= 1
        self.heap_cancelled += 1

    def on_event(self, sim, event, wall_s: float) -> None:
        kind = event_kind(event)
        self._count[kind] = self._count.get(kind, 0) + 1
        self._wall[kind] = self._wall.get(kind, 0.0) + wall_s
        self._sim_end[getattr(sim, "_prof_key", 0)] = sim.now

    # -- results -----------------------------------------------------------
    @property
    def events(self) -> int:
        return sum(self._count.values())

    def profile(self) -> KernelProfile:
        """Freeze the window into a :class:`KernelProfile`."""
        wall = self._wall_total
        if self._wall0 is not None:  # still running: include the open window
            wall += perf_counter() - self._wall0
        handlers = tuple(
            sorted(
                ((k, self._count[k], self._wall[k]) for k in self._count),
                key=lambda row: (-row[2], row[0]),
            )
        )
        return KernelProfile(
            events=self.events,
            sim_s=float(sum(self._sim_end.values())),
            wall_s=wall,
            handlers=handlers,
            heap_pushes=self.heap_pushes,
            heap_max=self.heap_max,
            heap_cancelled=self.heap_cancelled,
            simulators=self._sims,
        )

    def __repr__(self) -> str:
        return f"<KernelProfiler events={self.events} sims={self._sims}>"


@contextmanager
def profiled(profiler: Optional[KernelProfiler] = None):
    """Arm ``profiler`` for every Simulator constructed inside the block.

    ::

        with profiled() as prof:
            des_point(pattern, "list", "read", cfg)
        print(prof.profile().headline())
    """
    from ..simulate import kernel

    prof = profiler or KernelProfiler()
    previous = kernel._ACTIVE_PROFILER
    kernel._ACTIVE_PROFILER = prof
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
        kernel._ACTIVE_PROFILER = previous


# ---------------------------------------------------------------------------
# Host-level profiling: cProfile capture, flamegraph + pstats export.
# ---------------------------------------------------------------------------


def capture_cprofile(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` under :mod:`cProfile`.

    Returns ``(result, profile)`` where ``profile`` is the filled
    ``cProfile.Profile`` ready for :func:`collapsed_stacks`,
    :func:`write_pstats`, or :mod:`pstats` analysis.
    """
    import cProfile

    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    return result, profile


def _frame_name(func: Tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":  # C builtins
        return name.strip("<>")
    module = filename.rsplit("/", 1)[-1]
    return f"{module}:{name}"


def collapsed_stacks(profile) -> List[str]:
    """Render a cProfile capture as collapsed-stack lines.

    One line per observed caller→callee edge, ``caller;callee weight``,
    with the callee's own time (microseconds) split across its callers
    proportionally to call counts — the format ``flamegraph.pl`` and
    speedscope consume.  Root functions (no recorded caller) emit a
    single-frame line.  Lines are sorted for deterministic files.
    """
    import pstats

    stats = pstats.Stats(profile).stats
    lines: List[str] = []
    for func, (cc, nc, tt, ct, callers) in stats.items():
        own_us = tt * 1e6
        if own_us < 1.0:
            continue
        name = _frame_name(func)
        if not callers:
            lines.append(f"{name} {int(own_us)}")
            continue
        total_calls = sum(edge[1] for edge in callers.values()) or 1
        for caller, (ccc, ncc, _tt, _ct) in callers.items():
            weight = int(own_us * ncc / total_calls)
            if weight >= 1:
                lines.append(f"{_frame_name(caller)};{name} {weight}")
    return sorted(lines)


def write_collapsed(profile, path: str) -> int:
    """Write :func:`collapsed_stacks` lines to ``path``; returns the count."""
    lines = collapsed_stacks(profile)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def write_pstats(profile, path: str) -> None:
    """Dump the raw pstats file (``python -m pstats PATH`` to explore)."""
    profile.dump_stats(path)


def top_functions_markdown(profile, n: int = 15) -> str:
    """Markdown table of the ``n`` hottest functions by own time."""
    import pstats

    stats = pstats.Stats(profile).stats
    ranked = sorted(
        ((tt, ct, nc, func) for func, (cc, nc, tt, ct, _callers) in stats.items()),
        key=lambda row: (-row[0], _frame_name(row[3])),
    )[:n]
    lines = [
        "| function | calls | own (ms) | cumulative (ms) |",
        "|---|---|---|---|",
    ]
    for tt, ct, nc, func in ranked:
        lines.append(
            f"| {_frame_name(func)} | {nc} | {tt * 1e3:.3f} | {ct * 1e3:.3f} |"
        )
    return "\n".join(lines) + "\n"


def save_profile_json(profile_result: KernelProfile, path: str, **provenance: Any) -> None:
    """Write a :class:`KernelProfile` (plus provenance) as JSON."""
    doc = {"tool": "pvfs-sim-profile", "schema_version": 1}
    doc.update(provenance)
    doc["profile"] = profile_result.to_json()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
