"""Observability sessions: attach to clusters, capture runs, export.

:class:`ObsSession` is the one object the experiment harness and CLI deal
with::

    obs = ObsSession()
    cluster = Cluster.build(cfg, trace=True)
    obs.attach(cluster)                 # wires monitors onto every resource
    result = cluster.run_workload(wl)
    obs.capture(cluster, label="fig09/list x=64")

    obs.export_trace("run.json")        # Perfetto-loadable trace JSON
    print(obs.report_markdown())        # bottleneck verdict

A session accumulates one :class:`RunCapture` per observed workload; when
a figure sweep produces many, :meth:`best_run` picks the longest one (the
point that dominates the figure's wall-clock) for export and reporting,
and :meth:`runs_overview_markdown` one-lines the verdict of every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simulate import Span
from .bottleneck import BottleneckReport, attribute
from .monitor import ClusterMonitor, ResourceMonitor
from .perfetto import build_trace, write_trace

__all__ = ["RunCapture", "ObsSession"]


@dataclass
class RunCapture:
    """Frozen observability record of one workload run."""

    label: str
    t0: float
    t1: float
    spans: List[Span]
    monitors: Dict[str, ResourceMonitor]
    summary: Dict[str, Dict[str, float]]
    dropped_by_category: Dict[str, int] = field(default_factory=dict)
    #: Snapshot of the cluster's simulation counters at capture time
    #: (``net.payload_bytes``, per-client request counts, ...), feeding
    #: the ``sim.*`` aggregates in :func:`repro.obs.metrics.from_capture`.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.t1 - self.t0

    _FAULT_CATEGORIES = (
        "fault.crash",
        "fault.disk_stall",
        "fault.link_down",
        "fault.packet_loss",
        "client.timeout",
        "client.retry_backoff",
        "net.link_stall",
    )

    def report(self) -> BottleneckReport:
        report = attribute(self.monitors, self.t0, self.t1, label=self.label)
        report.faults = {
            cat: stats
            for cat, stats in self.summary.items()
            if cat in self._FAULT_CATEGORIES
        }
        return report

    def __repr__(self) -> str:
        return (
            f"<RunCapture {self.label!r} {self.elapsed:.6f}s "
            f"spans={len(self.spans)} resources={len(self.monitors)}>"
        )


class ObsSession:
    """Collects :class:`RunCapture` records across one or more runs."""

    def __init__(self) -> None:
        self.runs: List[RunCapture] = []
        self._active: Dict[int, ClusterMonitor] = {}
        #: SweepStats records appended by the sweep engine
        #: (:func:`repro.sweep.run_sweep`): per-worker point counts and
        #: cache hit/miss accounting, one per sweep observed.
        self.sweeps: List = []

    # -- lifecycle -----------------------------------------------------
    def attach(self, cluster) -> ClusterMonitor:
        """Enable tracing on ``cluster`` and wire monitors onto all of its
        resources.  Call before running the workload."""
        cluster.tracer.enabled = True
        monitor = ClusterMonitor(cluster)
        self._active[id(cluster)] = monitor
        return monitor

    def capture(self, cluster, label: str = "") -> RunCapture:
        """Snapshot the attached cluster's observability state as a run."""
        monitor = self._active.pop(id(cluster), None)
        if monitor is None:
            monitor = ClusterMonitor(cluster)  # late attach: window only
        t1 = cluster.sim.now
        monitor.close(t1)
        tracer = cluster.tracer
        run = RunCapture(
            label=label or f"run{len(self.runs)}",
            t0=monitor.t0,
            t1=t1,
            spans=list(tracer.spans),
            monitors=monitor.monitors,
            summary=tracer.summary(),
            dropped_by_category=dict(tracer.dropped_by_category),
            counters=cluster.counters.as_dict(),
        )
        monitor.detach()
        self.runs.append(run)
        return run

    def record_sweep(self, stats) -> None:
        """Attach one sweep's :class:`~repro.sweep.SweepStats` record."""
        self.sweeps.append(stats)

    # -- selection -----------------------------------------------------
    def best_run(self) -> Optional[RunCapture]:
        """The longest captured run — the point that dominates the sweep."""
        if not self.runs:
            return None
        return max(self.runs, key=lambda r: r.elapsed)

    def run_labelled(self, label: str) -> Optional[RunCapture]:
        for run in self.runs:
            if run.label == label:
                return run
        return None

    # -- outputs -------------------------------------------------------
    def export_trace(
        self, path: str, run: Optional[RunCapture] = None, *, metrics=None
    ) -> dict:
        """Write a Perfetto trace JSON for ``run`` (default: best run).

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) adds
        its time series as counter tracks on a dedicated lane."""
        run = run or self.best_run()
        if run is None:
            raise ValueError("no runs captured — nothing to export")
        return write_trace(run, path, metrics=metrics)

    def build_trace(self, run: Optional[RunCapture] = None) -> dict:
        run = run or self.best_run()
        if run is None:
            raise ValueError("no runs captured — nothing to export")
        return build_trace(run)

    def build_metrics(
        self, run: Optional[RunCapture] = None, *, epoch_s: Optional[float] = None
    ):
        """Epoch-sampled :class:`~repro.obs.metrics.MetricsRegistry` for
        ``run`` (default: best run)."""
        from .metrics import from_capture

        run = run or self.best_run()
        if run is None:
            raise ValueError("no runs captured — nothing to meter")
        return from_capture(run, epoch_s=epoch_s)

    def export_metrics(
        self,
        path: str,
        run: Optional[RunCapture] = None,
        *,
        epoch_s: Optional[float] = None,
        registry=None,
    ):
        """Write metrics JSONL for ``run``; extra instruments already in
        ``registry`` (e.g. sweep-level counters) are included."""
        from .metrics import from_capture

        run = run or self.best_run()
        if run is None:
            raise ValueError("no runs captured — nothing to export")
        reg = from_capture(run, epoch_s=epoch_s, registry=registry)
        reg.write_jsonl(path)
        return reg

    def report(self, run: Optional[RunCapture] = None) -> BottleneckReport:
        run = run or self.best_run()
        if run is None:
            raise ValueError("no runs captured — nothing to report")
        return run.report()

    def report_markdown(self, run: Optional[RunCapture] = None) -> str:
        return self.report(run).to_markdown()

    def runs_overview_markdown(self) -> str:
        """One line per captured run: label, elapsed, verdict."""
        if not self.runs:
            return "(no runs captured)\n"
        lines = ["| run | elapsed (s) | verdict |", "|---|---|---|"]
        for run in self.runs:
            lines.append(
                f"| {run.label} | {run.elapsed:.6f} | {run.report().verdict} |"
            )
        return "\n".join(lines) + "\n"

    def sweeps_markdown(self) -> str:
        """Sweep-level observability: one table per recorded sweep."""
        if not self.sweeps:
            return "(no sweeps recorded)\n"
        return "\n".join(s.to_markdown() for s in self.sweeps)

    def __repr__(self) -> str:
        return (
            f"<ObsSession runs={len(self.runs)} active={len(self._active)} "
            f"sweeps={len(self.sweeps)}>"
        )
