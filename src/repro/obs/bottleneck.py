"""Bottleneck attribution: rank resources by busy fraction and
critical-path contribution, emit a one-screen verdict.

Two complementary metrics per resource:

* **utilization** — busy seconds / window seconds.  High utilization says
  a resource worked hard, but several resources can all be 90% busy when
  they overlap perfectly (pipelining).
* **critical-path share** — a shared-attribution sweep over the merged
  busy intervals of every *hardware* resource (CPU, disk, NIC): each
  instant of the run window is attributed equally among the resources busy
  at that instant; an instant where nothing is busy is attributed to
  *idle* (think: client compute, latency gaps).  A resource's share is its
  attributed time divided by the window.  Shares plus idle sum to 1, so
  they answer "where did the wall-clock actually go" — the question the
  paper's list-vs-multiple-vs-sieving analysis keeps asking.

The verdict names the resource with the largest critical-path share and
classifies the run (``disk-bound`` / ``nic-bound`` / ``cpu-bound`` /
``idle-bound``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from .monitor import ResourceMonitor

__all__ = ["ResourceStat", "QueueStat", "BottleneckReport", "attribute"]

#: Resource kinds that participate in the critical-path sweep ("client"
#: windows span their own waiting time, so they would double-count).
_HARDWARE_KINDS = ("cpu", "disk", "nic")


@dataclass
class ResourceStat:
    """Attribution result for one resource."""

    name: str
    kind: str
    busy_s: float
    utilization: float
    critical_path_share: float


@dataclass
class QueueStat:
    """Depth statistics for one request queue."""

    name: str
    mean_depth: float
    p95_depth: float
    max_depth: float


@dataclass
class BottleneckReport:
    """One run's ranked attribution + verdict."""

    label: str
    t0: float
    t1: float
    resources: List[ResourceStat]
    queues: List[QueueStat]
    idle_share: float
    verdict: str
    #: Fault-window and retry span stats (category -> {count, total, ...}),
    #: filled by :meth:`RunCapture.report` when the run had fault activity
    #: (see :mod:`repro.faults`); empty on healthy runs.
    faults: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def window(self) -> float:
        return self.t1 - self.t0

    def top(self, n: int = 5) -> List[ResourceStat]:
        return self.resources[:n]

    def to_json(self) -> Dict:
        return {
            "label": self.label,
            "window_s": self.window,
            "verdict": self.verdict,
            "idle_share": self.idle_share,
            "resources": [asdict(r) for r in self.resources],
            "queues": [asdict(q) for q in self.queues],
            "faults": self.faults,
        }

    def to_markdown(self, top: int = 8) -> str:
        lines = [
            f"### bottleneck report — {self.label}",
            "",
            f"window: {self.window:.6f} simulated seconds",
            "",
            "| resource | kind | busy (s) | util | critical-path share |",
            "|---|---|---|---|---|",
        ]
        for r in self.top(top):
            lines.append(
                f"| {r.name} | {r.kind} | {r.busy_s:.6f} "
                f"| {r.utilization:.1%} | {r.critical_path_share:.1%} |"
            )
        lines.append(f"| (idle) | - | - | - | {self.idle_share:.1%} |")
        if self.queues:
            lines.append("")
            lines.append("| queue | mean depth | p95 depth | max depth |")
            lines.append("|---|---|---|---|")
            for q in self.queues:
                lines.append(
                    f"| {q.name} | {q.mean_depth:.2f} | {q.p95_depth:.0f} "
                    f"| {q.max_depth:.0f} |"
                )
        if self.faults:
            lines.append("")
            lines.append("| fault / retry activity | count | total (s) |")
            lines.append("|---|---|---|")
            for cat in sorted(self.faults):
                s = self.faults[cat]
                lines.append(
                    f"| {cat} | {int(s.get('count', 0))} | {s.get('total', 0.0):.6f} |"
                )
        lines.append("")
        lines.append(f"**verdict: {self.verdict}**")
        return "\n".join(lines) + "\n"


def _critical_path_shares(
    monitors: List[ResourceMonitor], t0: float, t1: float
) -> Tuple[Dict[str, float], float]:
    """Shared-attribution sweep: (per-resource attributed seconds, idle s)."""
    window = t1 - t0
    if window <= 0:
        return {m.name: 0.0 for m in monitors}, 0.0
    # Sweep events: +1/-1 per resource at interval edges, clipped to window.
    events: List[Tuple[float, int, int]] = []  # (time, delta, monitor idx)
    for idx, mon in enumerate(monitors):
        for s, e in mon.merged():
            lo, hi = max(s, t0), min(e, t1)
            if hi > lo:
                events.append((lo, +1, idx))
                events.append((hi, -1, idx))
    attributed = {m.name: 0.0 for m in monitors}
    if not events:
        return attributed, window
    events.sort(key=lambda ev: (ev[0], -ev[1]))
    active: Dict[int, int] = {}
    idle = 0.0
    cursor = t0
    i = 0
    while i < len(events):
        t = events[i][0]
        if t > cursor:
            dt = t - cursor
            if active:
                share = dt / len(active)
                for idx in active:
                    attributed[monitors[idx].name] += share
            else:
                idle += dt
            cursor = t
        while i < len(events) and events[i][0] == t:
            _, delta, idx = events[i]
            depth = active.get(idx, 0) + delta
            if depth <= 0:
                active.pop(idx, None)
            else:
                active[idx] = depth
            i += 1
    if cursor < t1:
        idle += t1 - cursor  # nothing busy after the last event
    return attributed, idle


def attribute(
    monitors: Dict[str, ResourceMonitor],
    t0: float,
    t1: float,
    label: str = "",
) -> BottleneckReport:
    """Build a :class:`BottleneckReport` from a run's monitors."""
    window = max(t1 - t0, 0.0)
    hardware = [m for m in monitors.values() if m.kind in _HARDWARE_KINDS]
    shares, idle_s = _critical_path_shares(hardware, t0, t1)
    stats: List[ResourceStat] = []
    for mon in monitors.values():
        if mon.kind == "queue":
            continue
        busy = mon.busy_within(t0, t1)
        stats.append(
            ResourceStat(
                name=mon.name,
                kind=mon.kind,
                busy_s=busy,
                utilization=busy / window if window > 0 else 0.0,
                critical_path_share=(
                    shares.get(mon.name, 0.0) / window if window > 0 else 0.0
                ),
            )
        )
    stats.sort(key=lambda r: (r.critical_path_share, r.utilization), reverse=True)
    queues = [
        QueueStat(
            name=mon.name,
            mean_depth=mon.queue_mean(t0, t1),
            p95_depth=mon.queue_percentile(t0, t1, 0.95),
            max_depth=mon.queue_depth.max_value(),
        )
        for mon in monitors.values()
        if mon.kind == "queue"
    ]
    queues.sort(key=lambda q: q.p95_depth, reverse=True)
    idle_share = idle_s / window if window > 0 else 1.0
    hardware_stats = [s for s in stats if s.kind in _HARDWARE_KINDS]
    if not hardware_stats or (
        hardware_stats[0].critical_path_share < idle_share
        and idle_share > 0.5
    ):
        verdict = (
            f"idle-bound: no resource dominates ({idle_share:.0%} of the "
            "window has no hardware busy — latency or client compute)"
        )
    else:
        top = hardware_stats[0]
        parts = [f"{top.name} {top.utilization:.0%} busy"]
        # One representative per other kind, for the paper-style one-liner.
        seen = {top.kind}
        for s in hardware_stats[1:]:
            if s.kind not in seen:
                parts.append(f"{s.name} {s.utilization:.0%}")
                seen.add(s.kind)
        if queues and queues[0].p95_depth > 0:
            parts.append(f"{queues[0].name} p95 depth {queues[0].p95_depth:.0f}")
        verdict = "; ".join(parts) + f" -> {top.kind}-bound"
    return BottleneckReport(
        label=label,
        t0=t0,
        t1=t1,
        resources=stats,
        queues=queues,
        idle_share=idle_share,
        verdict=verdict,
    )
