"""Chrome/Perfetto trace-event JSON export.

Maps a captured run onto the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

* every cluster *node* becomes a process (``pid``) — each client, each
  I/O daemon, and a separate manager node when one exists;
* within a node, activities become threads (``tid``): a client's logical
  requests; a daemon's request service, disk accesses, and queue waits;
  each NIC's TX and RX transfers;
* spans are complete events (``ph: "X"``) with microsecond ``ts`` /
  ``dur`` and the span's metadata in ``args``;
* inbox queue depths become counter tracks (``ph: "C"``) so the server
  backlog is visible as a graph above each daemon's lanes.

The emitted dict has ``traceEvents`` plus an ``otherData`` block carrying
the run label, the per-category span summary, and the bottleneck report —
so a saved trace file is self-describing (``pvfs-sim obs FILE`` reads it
back without the original run).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["build_trace", "write_trace", "TRACE_VERSION"]

TRACE_VERSION = 1

#: Thread ordering inside one process (lower = higher in the UI).
_TID_ORDER = ("requests", "service", "disk", "queue wait", "nic.tx", "nic.rx", "faults")


class _Lanes:
    """Stable pid/tid assignment for nodes and their activity lanes."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.meta: List[dict] = []

    def pid(self, node: str) -> int:
        if node not in self._pids:
            pid = len(self._pids) + 1
            self._pids[node] = pid
            self.meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": node},
                }
            )
            self.meta.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": _node_sort_key(node)},
                }
            )
        return self._pids[node]

    def tid(self, pid: int, lane: str) -> int:
        key = (pid, lane)
        if key not in self._tids:
            tid = (
                _TID_ORDER.index(lane) + 1
                if lane in _TID_ORDER
                else len(_TID_ORDER) + len(self._tids) + 1
            )
            # Keep tids unique within the pid even for unknown lanes.
            while any(
                t == tid and p == pid for (p, _), t in self._tids.items()
            ):
                tid += 1
            self._tids[key] = tid
            self.meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return self._tids[key]


def _node_sort_key(node: str) -> int:
    """Clients first, then I/O daemons, then the manager."""
    if node.startswith("client"):
        return 0 + _trailing_int(node)
    if node.startswith("iod"):
        return 1000 + _trailing_int(node)
    return 2000


def _trailing_int(name: str) -> int:
    digits = ""
    for ch in reversed(name):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return int(digits) if digits else 0


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (the format's unit)."""
    return t * 1e6


def _span_lane(span) -> Optional[Tuple[str, str]]:
    """(node, lane) placement for one span; None = skip."""
    meta = dict(span.meta)
    cat = span.category
    if cat == "client.request":
        return f"client{meta.get('client', 0)}", "requests"
    if cat == "iod.service":
        return f"iod{meta.get('iod', 0)}", "service"
    if cat == "disk.busy":
        return f"iod{meta.get('iod', 0)}", "disk"
    if cat == "iod.queue_wait":
        # label is "iod<i>"
        return span.label, "queue wait"
    if cat == "net.xfer":
        return meta.get("src", span.label), "nic.tx"
    if cat == "net.wait":
        return meta.get("src", span.label), "nic.tx"
    # Fault-injection windows and the client's survival actions (see
    # repro.faults): each lands on a "faults" lane of the affected node so
    # a crash window lines up visually with the retries it caused.
    if cat in ("fault.crash", "fault.disk_stall", "fault.fence", "fault.resync"):
        return f"iod{meta.get('iod', 0)}", "faults"
    if cat in ("fault.link_down", "fault.packet_loss"):
        return meta.get("node", span.label), "faults"
    if cat in ("client.timeout", "client.retry_backoff", "client.failover"):
        return f"client{meta.get('client', 0)}", "faults"
    if cat == "net.link_stall":
        return meta.get("src", span.label), "faults"
    return None


def build_trace(capture, metrics=None) -> Dict[str, Any]:
    """Render one :class:`~repro.obs.session.RunCapture` as a trace dict.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) adds one
    Perfetto counter track per epoch-sampled series on a dedicated
    ``metrics`` process lane — utilization, queue depths, and bytes per
    epoch plot as graphs above the span timelines.
    """
    lanes = _Lanes()
    events: List[dict] = []
    for span in capture.spans:
        placement = _span_lane(span)
        if placement is None:
            continue
        node, lane = placement
        pid = lanes.pid(node)
        tid = lanes.tid(pid, lane)
        meta = dict(span.meta)
        events.append(
            {
                "name": span.label,
                "cat": span.category,
                "ph": "X",
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "pid": pid,
                "tid": tid,
                "args": meta,
            }
        )
        # Mirror wire transfers onto the receiver's RX lane so many-to-one
        # queueing at a server NIC is visible from the server's row.
        if span.category == "net.xfer" and "dst" in meta:
            dst_pid = lanes.pid(meta["dst"])
            events.append(
                {
                    "name": span.label,
                    "cat": "net.xfer",
                    "ph": "X",
                    "ts": _us(span.start),
                    "dur": _us(span.duration),
                    "pid": dst_pid,
                    "tid": lanes.tid(dst_pid, "nic.rx"),
                    "args": meta,
                }
            )
    # Queue-depth counter tracks from the monitors.
    for mon in capture.monitors.values():
        if mon.kind != "queue" or not mon.queue_depth.times:
            continue
        node = mon.name.split(".", 1)[0]  # "iod3.inbox" -> "iod3"
        pid = lanes.pid(node)
        for t, depth in zip(mon.queue_depth.times, mon.queue_depth.values):
            events.append(
                {
                    "name": "inbox depth",
                    "cat": "queue",
                    "ph": "C",
                    "ts": _us(t),
                    "pid": pid,
                    "args": {"depth": depth},
                }
            )
    if metrics is not None:
        from .metrics import perfetto_counter_events

        events.extend(perfetto_counter_events(metrics, lanes.pid("metrics")))
    events.sort(key=lambda e: (e["ts"], e["pid"], e.get("tid", 0)))
    report = capture.report()
    return {
        "traceEvents": lanes.meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "pvfs-sim",
            "trace_version": TRACE_VERSION,
            "label": capture.label,
            "window_s": capture.t1 - capture.t0,
            "span_summary": capture.summary,
            "dropped_spans": capture.dropped_by_category,
            "bottleneck": report.to_json(),
        },
    }


def write_trace(capture, path: str, metrics=None) -> Dict[str, Any]:
    """Serialize :func:`build_trace` output to ``path``; returns the dict."""
    doc = build_trace(capture, metrics=metrics)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc
