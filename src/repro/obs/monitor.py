"""Resource monitors: busy/idle timelines and queue-depth sampling.

A :class:`ResourceMonitor` is the passive observer the simulation
primitives call through their optional ``monitor`` hooks
(:class:`~repro.simulate.Resource`, :class:`~repro.simulate.Store`,
:class:`~repro.storage.Disk`, :class:`~repro.pvfs.iod.IOD`,
:class:`~repro.pvfs.client.PVFSClient`).  It records *when* a resource was
busy — as explicit intervals, not just an accumulated total — so
utilization can be computed over any sub-window of a run, and samples
queue depth as a :class:`~repro.simulate.Timeline`.

:class:`ClusterMonitor` wires one monitor onto every interesting resource
of a built cluster: each NIC TX/RX link, each I/O daemon's service loop,
each disk, each daemon inbox, and each client.  Monitors never advance
simulated time; attaching them cannot change results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..simulate import Timeline

__all__ = ["ResourceMonitor", "ClusterMonitor", "merge_intervals"]


def merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Sort and coalesce possibly-overlapping (start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    out = [ordered[0]]
    for s, e in ordered[1:]:
        ls, le = out[-1]
        if s <= le:
            if e > le:
                out[-1] = (ls, e)
        else:
            out.append((s, e))
    return out


class ResourceMonitor:
    """Busy/idle intervals + queue-depth samples for one resource.

    ``kind`` classifies the resource for bottleneck attribution:
    ``"cpu"`` (daemon service loop), ``"disk"``, ``"nic"`` (a TX or RX
    link), ``"queue"`` (an inbox — depth only), or ``"client"``
    (application-level request windows).
    """

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.intervals: List[Tuple[float, float]] = []
        self.queue_depth = Timeline(f"{name}.queue")
        self._open: Optional[float] = None
        self._depth = 0

    # -- hooks (called by the instrumented primitives) -----------------
    def on_busy(self, t: float) -> None:
        if self._depth == 0:
            self._open = t
        self._depth += 1

    def on_idle(self, t: float) -> None:
        if self._depth == 0:
            return  # spurious idle (never busy) — ignore
        self._depth -= 1
        if self._depth == 0 and self._open is not None:
            self.intervals.append((self._open, t))
            self._open = None

    def on_queue(self, t: float, depth: float) -> None:
        self.queue_depth.record(t, depth)

    # -- analysis ------------------------------------------------------
    def close(self, t: float) -> None:
        """Close any dangling busy interval at capture time ``t``."""
        if self._open is not None and self._depth > 0:
            self.intervals.append((self._open, t))
            self._open = None
            self._depth = 0

    def merged(self) -> List[Tuple[float, float]]:
        return merge_intervals(self.intervals)

    def busy_within(self, t0: float, t1: float) -> float:
        """Seconds busy inside the window ``[t0, t1]``."""
        total = 0.0
        for s, e in self.merged():
            lo, hi = max(s, t0), min(e, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, t0: float, t1: float) -> float:
        """Busy fraction of the window (0.0 for an empty window)."""
        if t1 <= t0:
            return 0.0
        return self.busy_within(t0, t1) / (t1 - t0)

    def queue_mean(self, t0: float, t1: float) -> float:
        return self.queue_depth.mean_over(t0, t1)

    def queue_percentile(self, t0: float, t1: float, q: float) -> float:
        """Time-weighted depth percentile over the window: the depth the
        queue was at or below for a ``q`` fraction of the window."""
        if t1 <= t0:
            return 0.0
        tl = self.queue_depth
        # Build (duration, depth) segments clipped to the window; depth is
        # 0 before the first sample and the last sample persists.
        segments: List[Tuple[float, float]] = []
        if not tl.times:
            return 0.0
        if t0 < tl.times[0]:
            segments.append((min(t1, tl.times[0]) - t0, 0.0))
        for i in range(len(tl.times)):
            seg_start = tl.times[i]
            seg_end = tl.times[i + 1] if i + 1 < len(tl.times) else t1
            lo, hi = max(seg_start, t0), min(seg_end, t1)
            if hi > lo:
                segments.append((hi - lo, tl.values[i]))
        total = sum(d for d, _ in segments)
        if total <= 0.0:
            return 0.0
        target = q * total
        acc = 0.0
        for dur, depth in sorted(segments, key=lambda s: s[1]):
            acc += dur
            if acc >= target:
                return depth
        return segments[-1][1]

    def __repr__(self) -> str:
        return (
            f"<ResourceMonitor {self.name} [{self.kind}] "
            f"intervals={len(self.intervals)} samples={len(self.queue_depth)}>"
        )


class ClusterMonitor:
    """Attach a :class:`ResourceMonitor` to every resource of a cluster.

    Lanes created (names double as Perfetto thread labels and bottleneck
    report rows):

    * ``<node>.nic.tx`` / ``<node>.nic.rx`` — every node's NIC links,
    * ``iod<i>.cpu`` — each I/O daemon's request-service loop,
    * ``iod<i>.disk`` — each daemon's disk,
    * ``iod<i>.inbox`` — each daemon's request queue (depth only),
    * ``client<i>.app`` — each client's logical-request windows.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.t0 = cluster.sim.now
        self.monitors: Dict[str, ResourceMonitor] = {}
        for node in cluster.net.nodes():
            node.tx.monitor = self._new(f"{node.name}.nic.tx", "nic")
            node.rx.monitor = self._new(f"{node.name}.nic.rx", "nic")
        for iod in cluster.iods:
            iod.monitor = self._new(f"iod{iod.index}.cpu", "cpu")
            iod.disk.monitor = self._new(f"iod{iod.index}.disk", "disk")
            iod.inbox.monitor = self._new(f"iod{iod.index}.inbox", "queue")
        for client in cluster.clients:
            client.monitor = self._new(f"client{client.index}.app", "client")

    def _new(self, name: str, kind: str) -> ResourceMonitor:
        mon = ResourceMonitor(name, kind)
        self.monitors[name] = mon
        return mon

    def close(self, t: float) -> None:
        """Close dangling busy intervals at capture time ``t``."""
        for mon in self.monitors.values():
            mon.close(t)

    def detach(self) -> None:
        """Unhook every monitor (the cluster reverts to zero-cost)."""
        for node in self.cluster.net.nodes():
            node.tx.monitor = None
            node.rx.monitor = None
        for iod in self.cluster.iods:
            iod.monitor = None
            iod.disk.monitor = None
            iod.inbox.monitor = None
        for client in self.cluster.clients:
            client.monitor = None

    def __repr__(self) -> str:
        return f"<ClusterMonitor resources={len(self.monitors)}>"
