"""Deterministic fault injection and recovery for the simulated PVFS.

The paper's PVFS has no fault tolerance — "if an I/O server goes down, the
file system hangs with it."  This package adds what 2002-era PVFS lacked,
as a seeded, replayable subsystem:

* :mod:`~repro.faults.plan` — declarative fault records
  (:class:`IodCrash`, :class:`DiskStall`, :class:`LinkDown`,
  :class:`PacketLoss`, :class:`Straggler`), the :class:`FaultPlan`
  schedule, the client :class:`RetryPolicy`, and the :class:`FaultConfig`
  carried by :class:`~repro.config.ClusterConfig`;
* :mod:`~repro.faults.injector` — the :class:`FaultInjector` DES processes
  that execute a plan against a built cluster.

See ``docs/faults.md`` for the fault model and the ``chaos`` CLI.
"""

from .injector import FaultInjector
from .plan import (
    DiskStall,
    FaultConfig,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
    parse_straggler_spec,
)

__all__ = [
    "DiskStall",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "IodCrash",
    "LinkDown",
    "PacketLoss",
    "RetryPolicy",
    "Straggler",
    "parse_straggler_spec",
]
