"""Declarative fault schedules and client retry policy.

The paper's PVFS ships with no fault tolerance: "If an I/O server goes
down, the file system hangs with it."  This module is the *description*
half of the robustness subsystem grown on top of the reproduction — pure
data, no simulation imports — so a fault scenario can live on a frozen
:class:`~repro.config.ClusterConfig`, be hashed, compared, and replayed
bit-identically:

* :class:`IodCrash` / :class:`DiskStall` / :class:`LinkDown` /
  :class:`PacketLoss` / :class:`Straggler` — one scheduled fault each;
* :class:`FaultPlan` — a seeded, validated collection of faults;
* :class:`RetryPolicy` — the client-side survival knobs (per-request
  timeout, exponential backoff with seeded jitter, bounded retry budget);
* :class:`FaultConfig` — plan + policy, the field ``ClusterConfig.faults``
  carries.

The execution half is :class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from ..errors import ConfigError

__all__ = [
    "IodCrash",
    "DiskStall",
    "LinkDown",
    "PacketLoss",
    "Straggler",
    "FaultPlan",
    "RetryPolicy",
    "FaultConfig",
    "parse_straggler_spec",
]


def _require(cond: bool, what: str) -> None:
    if not cond:
        raise ConfigError(what)


@dataclass(frozen=True)
class IodCrash:
    """I/O daemon ``iod`` crashes at ``at`` and restarts ``restart_after``
    seconds later (``None`` = never comes back).

    On crash the daemon's inbox is dropped, its in-flight request and
    response transmissions are interrupted, and every affected client gets
    :class:`~repro.errors.ServerCrashed`.  On restart the daemon comes back
    with a cold page cache and re-serves file contents from its byte store
    (acknowledged writes are durable; unacknowledged ones rely on client
    replay).
    """

    iod: int
    at: float
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.iod >= 0, "IodCrash.iod must be non-negative")
        _require(self.at >= 0, "IodCrash.at must be non-negative")
        if self.restart_after is not None:
            _require(self.restart_after > 0, "IodCrash.restart_after must be positive")


@dataclass(frozen=True)
class DiskStall:
    """The disk of I/O daemon ``iod`` serves ``factor`` times slower during
    ``[at, at + duration)`` (a failing drive retrying sectors, RAID rebuild,
    background scrub)."""

    iod: int
    at: float
    duration: float
    factor: float = 10.0

    def __post_init__(self) -> None:
        _require(self.iod >= 0, "DiskStall.iod must be non-negative")
        _require(self.at >= 0, "DiskStall.at must be non-negative")
        _require(self.duration > 0, "DiskStall.duration must be positive")
        _require(self.factor >= 1.0, "DiskStall.factor must be >= 1")


@dataclass(frozen=True)
class LinkDown:
    """Node ``node`` (a network node name such as ``"iod2"`` or
    ``"client0"``) loses its link during ``[at, at + duration)``.

    Messages touching the node during the window stall until the link comes
    back (TCP retransmission riding out a flap), then pay one reconnect
    delay."""

    node: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _require(bool(self.node), "LinkDown.node must be a node name")
        _require(self.at >= 0, "LinkDown.at must be non-negative")
        _require(self.duration > 0, "LinkDown.duration must be positive")


@dataclass(frozen=True)
class PacketLoss:
    """Node ``node`` drops each frame with probability ``rate`` during
    ``[at, at + duration)``; lost frames cost one TCP retransmission
    timeout each (seeded, deterministic draws)."""

    node: str
    at: float
    duration: float
    rate: float = 0.05

    def __post_init__(self) -> None:
        _require(bool(self.node), "PacketLoss.node must be a node name")
        _require(self.at >= 0, "PacketLoss.at must be non-negative")
        _require(self.duration > 0, "PacketLoss.duration must be positive")
        _require(0.0 < self.rate < 1.0, "PacketLoss.rate must be in (0, 1)")


@dataclass(frozen=True)
class Straggler:
    """I/O daemon ``iod`` serves every request ``scale`` times slower for
    the whole run (the degraded-node knob previously only reachable by
    poking ``IOD.service_scale`` directly)."""

    iod: int
    scale: float

    def __post_init__(self) -> None:
        _require(self.iod >= 0, "Straggler.iod must be non-negative")
        _require(self.scale > 0, "Straggler.scale must be positive")


Fault = Union[IodCrash, DiskStall, LinkDown, PacketLoss, Straggler]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, declarative schedule of faults.

    ``faults`` is an ordered tuple; the injector executes each at its own
    simulated time.  Identical plan + identical cluster seed => bit-identical
    runs (the test suite enforces this).
    """

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for f in self.faults:
            _require(
                isinstance(f, (IodCrash, DiskStall, LinkDown, PacketLoss, Straggler)),
                f"unknown fault record {f!r}",
            )

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def with_faults(self, *extra: Fault) -> "FaultPlan":
        return FaultPlan(self.faults + tuple(extra))

    def stragglers(self) -> Tuple[Straggler, ...]:
        return tuple(f for f in self.faults if isinstance(f, Straggler))

    def scheduled(self) -> Tuple[Fault, ...]:
        """Every fault the injector must drive as a timed process
        (stragglers apply at build time instead)."""
        return tuple(f for f in self.faults if not isinstance(f, Straggler))

    def validate_against(self, n_iods: int, node_names) -> None:
        """Check every fault targets an existing daemon / node."""
        names = set(node_names)
        for f in self.faults:
            if isinstance(f, (IodCrash, DiskStall, Straggler)):
                _require(
                    f.iod < n_iods,
                    f"{type(f).__name__} targets iod {f.iod}, cluster has {n_iods}",
                )
            else:
                _require(
                    f.node in names,
                    f"{type(f).__name__} targets unknown node {f.node!r}",
                )


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side robustness knobs.

    The default policy is *inert* — no timeout, no retries — so a plain
    cluster behaves bit-identically to the pre-fault-subsystem seed.  Enable
    robustness by setting ``request_timeout`` (and usually ``max_retries``).

    Backoff for attempt ``k`` (0-based count of *completed* failures) is::

        delay_k = min(backoff_cap, backoff_base * backoff_factor ** k)

    optionally dilated by up to ``+/- jitter`` (uniform, seeded from the
    cluster seed and the client index, so runs stay reproducible).
    """

    #: Seconds a single attempt may take before the client abandons it
    #: (``None`` disables timeouts — and with them the whole retry path).
    request_timeout: Optional[float] = None
    #: Retries after the first attempt (0 = fail on first error).
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: Relative jitter on each backoff delay (0 = none; 0.1 = +/-10%).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.request_timeout is not None:
            _require(self.request_timeout > 0, "request_timeout must be positive")
        _require(self.max_retries >= 0, "max_retries must be non-negative")
        _require(self.backoff_base >= 0, "backoff_base must be non-negative")
        _require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        _require(self.backoff_cap >= self.backoff_base, "backoff_cap must be >= backoff_base")
        _require(0.0 <= self.jitter < 1.0, "jitter must be in [0, 1)")

    @property
    def active(self) -> bool:
        """Whether the retry machinery engages at all."""
        return self.request_timeout is not None

    @property
    def budget(self) -> int:
        """Per-request attempt budget: the first attempt plus every retry.

        :class:`~repro.errors.RetryExhausted` carries this as ``attempts``
        once the budget runs out; the failover path spends one full budget
        per replica before moving down the chain.
        """
        return self.max_retries + 1

    def backoff(self, attempt: int, rng=None) -> float:
        """Backoff delay before retry number ``attempt + 1`` (attempt is the
        0-based index of the failure that triggered it)."""
        delay = min(self.backoff_cap, self.backoff_base * self.backoff_factor**attempt)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class FaultConfig:
    """What can go wrong (``plan``) and how clients survive it (``retry``)."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def is_inert(self) -> bool:
        """True when this config cannot change a run at all."""
        return self.plan.is_empty and not self.retry.active

    def with_(self, **kwargs) -> "FaultConfig":
        return replace(self, **kwargs)


def parse_straggler_spec(spec: str) -> Straggler:
    """Parse a CLI ``IDX:SCALE`` straggler spec (e.g. ``0:8``)."""
    try:
        idx_s, scale_s = spec.split(":", 1)
        return Straggler(iod=int(idx_s), scale=float(scale_s))
    except ConfigError:
        raise
    except ValueError:
        raise ConfigError(
            f"bad straggler spec {spec!r}: expected IDX:SCALE (e.g. 0:8)"
        ) from None
