"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One simulation process per scheduled fault sleeps until the fault's start
time, flips the corresponding hook (daemon crash, disk ``fault_scale``,
link-down window, frame-loss window), and — for window faults — flips it
back when the window closes.  Everything is driven off the cluster's seeded
clock and RNGs, so a given plan + seed replays bit-identically.

The injector also keeps a human-readable event log and answers the
recovery-time question ("how long from crash until the restarted daemon
served its first request?") the chaos CLI reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .plan import DiskStall, FaultPlan, IodCrash, LinkDown, PacketLoss

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives every scheduled fault of a plan against a built cluster."""

    def __init__(self, cluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        self.scope = cluster.counters.scoped("faults")
        #: Seeded draws for frame-loss windows (distinct stream from the
        #: daemons' jitter RNGs so adding a fault never perturbs them).
        self._loss_rng = np.random.default_rng(cluster.config.seed * 9973 + 11)
        #: (sim time, description) log of every fault transition.
        self.events: List[Tuple[float, str]] = []
        self._procs = [
            self.sim.process(self._drive(f), name=f"fault.{type(f).__name__}")
            for f in plan.scheduled()
        ]

    # ------------------------------------------------------------------
    def _note(self, what: str) -> None:
        self.events.append((self.sim.now, what))

    def _span(self, category: str, name: str, start: float, **meta) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(category, name, start, self.sim.now, **meta)

    # ------------------------------------------------------------------
    def _drive(self, fault):
        sim = self.sim
        yield sim.timeout(fault.at)
        if isinstance(fault, IodCrash):
            yield from self._drive_crash(fault)
        elif isinstance(fault, DiskStall):
            yield from self._drive_disk_stall(fault)
        elif isinstance(fault, LinkDown):
            yield from self._drive_link_down(fault)
        elif isinstance(fault, PacketLoss):
            yield from self._drive_packet_loss(fault)

    def _drive_crash(self, fault: IodCrash):
        sim = self.sim
        iod = self.cluster.iods[fault.iod]
        t0 = sim.now
        iod.crash()
        self.scope.add("crashes")
        self._note(f"iod{fault.iod} crashed")
        if fault.restart_after is not None:
            yield sim.timeout(fault.restart_after)
            iod.restart()
            self._note(f"iod{fault.iod} restarted")
        self._span("fault.crash", f"iod{fault.iod}", t0, iod=fault.iod)

    def _drive_disk_stall(self, fault: DiskStall):
        sim = self.sim
        disk = self.cluster.iods[fault.iod].disk
        t0 = sim.now
        # Multiplicative so overlapping stall windows compose.
        disk.fault_scale *= fault.factor
        self.scope.add("disk_stalls")
        self._note(f"iod{fault.iod} disk stalled x{fault.factor}")
        yield sim.timeout(fault.duration)
        disk.fault_scale /= fault.factor
        self._note(f"iod{fault.iod} disk recovered")
        self._span(
            "fault.disk_stall", f"iod{fault.iod}", t0, iod=fault.iod, factor=fault.factor
        )

    def _drive_link_down(self, fault: LinkDown):
        sim = self.sim
        t0 = sim.now
        self.cluster.net.set_link_down(fault.node, sim.now + fault.duration)
        self.scope.add("link_downs")
        self._note(f"{fault.node} link down")
        yield sim.timeout(fault.duration)
        self._note(f"{fault.node} link up")
        self._span("fault.link_down", fault.node, t0, node=fault.node)

    def _drive_packet_loss(self, fault: PacketLoss):
        sim = self.sim
        t0 = sim.now
        self.cluster.net.set_frame_loss(fault.node, fault.rate, self._loss_rng)
        self.scope.add("packet_loss_windows")
        self._note(f"{fault.node} dropping {fault.rate:.0%} of frames")
        yield sim.timeout(fault.duration)
        self.cluster.net.clear_frame_loss(fault.node)
        self._note(f"{fault.node} loss window closed")
        self._span("fault.packet_loss", fault.node, t0, node=fault.node, rate=fault.rate)

    # ------------------------------------------------------------------
    def recovery_times(self) -> Dict[int, Optional[float]]:
        """Per-crashed-daemon recovery time: seconds from crash until the
        restarted daemon completed its first request (None = not recovered
        within the run)."""
        out: Dict[int, Optional[float]] = {}
        for f in self.plan.scheduled():
            if isinstance(f, IodCrash):
                out[f.iod] = self.cluster.iods[f.iod].recovery_time()
        return out

    def format_events(self) -> str:
        return "\n".join(f"[{t:12.6f}] {what}" for t, what in self.events)

    def __repr__(self) -> str:
        return f"<FaultInjector faults={len(self.plan)} fired={len(self.events)}>"
